#![warn(missing_docs)]

//! # hdm-dfs
//!
//! A simulated HDFS for the Hive-on-DataMPI reproduction.
//!
//! The paper's testbed stores tables, intermediate stage outputs, and
//! serialized job descriptions in HDFS (Hadoop 1.2.1, 64 MB blocks,
//! 8 nodes). Both execution engines in this repository — the Hadoop-like
//! MapReduce engine and the DataMPI engine — read inputs from and write
//! outputs to this filesystem, exactly as in the paper ("DataMPI also
//! supports HDFS data access, so DataMPI can share the same input and
//! output files").
//!
//! The simulation keeps the properties the paper's evaluation depends on:
//!
//! * **Block-structured files** with a configurable block size (default
//!   64 MB, the paper's setting) — input splits are block-aligned.
//! * **Replica placement with locality**: the first replica lands on the
//!   writer's node, remaining replicas on distinct other nodes; readers
//!   can ask for block locations to schedule map tasks node-locally.
//! * **Byte accounting**: every read and write is tallied per node, which
//!   feeds the discrete-event cluster model's disk/network charges.
//!
//! Data lives in memory (`bytes::Bytes`), which is appropriate at the
//! laptop scale this reproduction runs at; the timing model, not the
//! in-memory store, accounts for disk behaviour.
//!
//! # Example
//!
//! ```
//! use hdm_dfs::{Dfs, DfsConfig, NodeId};
//!
//! let dfs = Dfs::new(DfsConfig { block_size: 8, replication: 2, num_nodes: 4 });
//! let mut w = dfs.create("/warehouse/t/part-0", NodeId(1)).unwrap();
//! w.write(b"hello block world").unwrap();
//! w.close().unwrap();
//!
//! assert_eq!(dfs.read_all("/warehouse/t/part-0").unwrap(), b"hello block world");
//! let splits = dfs.splits("/warehouse/t/part-0").unwrap();
//! assert_eq!(splits.len(), 3); // 17 bytes over 8-byte blocks
//! assert!(splits[0].hosts.contains(&NodeId(1))); // writer-local replica
//! ```

mod metrics;
mod namespace;
mod split;

pub use metrics::DfsMetrics;
pub use split::FileSplit;

use bytes::Bytes;
use hdm_common::error::{HdmError, Result};
use namespace::{FileEntry, Namespace};
use parking_lot::RwLock;
use std::sync::Arc;

/// Identifies a cluster node (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Filesystem-wide settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsConfig {
    /// Block size in bytes. The paper's testbed uses the Hadoop default
    /// of 64 MB.
    pub block_size: usize,
    /// Replication factor. Replicas beyond the node count are dropped.
    pub replication: usize,
    /// Number of datanodes available for replica placement.
    pub num_nodes: u32,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig {
            block_size: 64 * 1024 * 1024,
            replication: 3,
            num_nodes: 8,
        }
    }
}

/// A pluggable read-through cache for ranged reads (the LLAP-style
/// shared data/metadata cache seam). The filesystem consults the cache
/// *before* touching blocks — a hit bypasses disk entirely (and hence
/// byte accounting, locality accounting, and fault injection, exactly
/// as a daemon-resident cache bypasses the datanode) — and offers every
/// miss back for admission. Mutating operations (`delete`, `rename`,
/// writer close) invalidate the affected path so the cache can never
/// serve stale bytes for a recreated file.
pub trait RangeCache: std::fmt::Debug + Send + Sync {
    /// Return the cached bytes for `(path, offset, len)` if present.
    fn lookup(&self, path: &str, offset: u64, len: u64) -> Option<Vec<u8>>;
    /// Offer freshly-read bytes for admission (the cache may decline).
    fn admit(&self, path: &str, offset: u64, len: u64, bytes: &[u8]);
    /// Drop every entry belonging to `path`.
    fn invalidate_path(&self, path: &str);
}

/// A cheaply-cloneable handle to the simulated filesystem.
#[derive(Debug, Clone)]
pub struct Dfs {
    inner: Arc<RwLock<Namespace>>,
    config: DfsConfig,
    metrics: Arc<DfsMetrics>,
    /// Chaos source for transient ranged-read failures; shared across
    /// clones (like `metrics`) so attaching once covers every handle.
    faults: Arc<RwLock<hdm_faults::FaultPlan>>,
    /// Optional read-through cache; shared across clones so the server
    /// can attach one cache that covers every session's handle.
    read_cache: Arc<RwLock<Option<Arc<dyn RangeCache>>>>,
}

impl Dfs {
    /// Create an empty filesystem.
    ///
    /// # Panics
    /// Panics if `block_size` is zero or `num_nodes` is zero.
    pub fn new(config: DfsConfig) -> Dfs {
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.num_nodes > 0, "need at least one node");
        Dfs {
            inner: Arc::new(RwLock::new(Namespace::new())),
            config,
            metrics: Arc::new(DfsMetrics::new(config.num_nodes)),
            faults: Arc::new(RwLock::new(hdm_faults::FaultPlan::disabled())),
            read_cache: Arc::new(RwLock::new(None)),
        }
    }

    /// An 8-node filesystem with the paper's 64 MB blocks.
    pub fn with_defaults() -> Dfs {
        Dfs::new(DfsConfig::default())
    }

    /// The configuration this filesystem was built with.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// I/O counters (bytes read/written per node, locality hits).
    pub fn metrics(&self) -> &DfsMetrics {
        &self.metrics
    }

    /// Mirror DFS traffic into an observability sink (resource-probe
    /// input for the Fig. 13 dstat analogue). See
    /// [`DfsMetrics::attach_obs`].
    pub fn attach_obs(&self, obs: &hdm_obs::ObsHandle) {
        self.metrics.attach_obs(obs);
    }

    /// Arm fault injection for ranged reads (the split-read path that
    /// executes inside retryable task attempts). Whole-file reads are
    /// deliberately not injected: they serve driver-side planning, which
    /// has no task-level retry around it. Attaching a disabled plan
    /// restores clean reads.
    pub fn attach_faults(&self, plan: &hdm_faults::FaultPlan) {
        *self.faults.write() = plan.clone();
    }

    /// Install (or with `None`, remove) a read-through cache for ranged
    /// reads. Shared across clones of this handle.
    pub fn attach_read_cache(&self, cache: Option<Arc<dyn RangeCache>>) {
        *self.read_cache.write() = cache;
    }

    /// Clone the cache handle out of its lock so cache calls never run
    /// under a dfs lock (keeps the lock-order graph acyclic).
    fn cache_handle(&self) -> Option<Arc<dyn RangeCache>> {
        self.read_cache.read().clone()
    }

    /// Open a new file for writing. Fails if the path already exists.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if the file exists.
    pub fn create(&self, path: &str, writer_node: NodeId) -> Result<DfsWriter> {
        let mut ns = self.inner.write();
        if ns.contains(path) {
            return Err(HdmError::Dfs(format!("file exists: {path}")));
        }
        ns.insert_open(path);
        Ok(DfsWriter {
            dfs: self.clone(),
            path: path.to_string(),
            writer_node,
            pending: Vec::new(),
            blocks: Vec::new(),
            closed: false,
        })
    }

    /// Whole-file read.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if the path is missing or still open for write.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>> {
        let entry = self.entry(path)?;
        let mut out = Vec::with_capacity(entry.len as usize);
        for block in &entry.blocks {
            out.extend_from_slice(&block.data);
        }
        self.metrics.record_read(None, out.len() as u64);
        Ok(out)
    }

    /// Read `len` bytes starting at `offset`, as a map task reading its
    /// split does. `reader_node` (if given) is used for locality
    /// accounting: the read counts as node-local iff some replica of every
    /// touched block lives on that node.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] on missing file or out-of-range read.
    pub fn read_range(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        reader_node: Option<NodeId>,
    ) -> Result<Vec<u8>> {
        // A cache hit is served from daemon memory: no disk touched, so
        // no storage fault can fire and no I/O is accounted.
        if let Some(cache) = self.cache_handle() {
            if let Some(bytes) = cache.lookup(path, offset, len) {
                return Ok(bytes);
            }
            if let Some(e) = self.faults.read().storage_error(path) {
                return Err(e);
            }
            let bytes = self.read_range_uninjected(path, offset, len, reader_node)?;
            cache.admit(path, offset, len, &bytes);
            return Ok(bytes);
        }
        if let Some(e) = self.faults.read().storage_error(path) {
            return Err(e);
        }
        self.read_range_uninjected(path, offset, len, reader_node)
    }

    /// [`Self::read_range`] for driver-side planning reads (file footers,
    /// split enumeration): exempt from fault injection like [`Self::read_all`],
    /// because planning runs outside any retryable task attempt.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] on missing file or out-of-range read.
    pub fn read_range_planning(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        reader_node: Option<NodeId>,
    ) -> Result<Vec<u8>> {
        if let Some(cache) = self.cache_handle() {
            if let Some(bytes) = cache.lookup(path, offset, len) {
                return Ok(bytes);
            }
            let bytes = self.read_range_uninjected(path, offset, len, reader_node)?;
            cache.admit(path, offset, len, &bytes);
            return Ok(bytes);
        }
        self.read_range_uninjected(path, offset, len, reader_node)
    }

    fn read_range_uninjected(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        reader_node: Option<NodeId>,
    ) -> Result<Vec<u8>> {
        let entry = self.entry(path)?;
        if offset + len > entry.len {
            return Err(HdmError::Dfs(format!(
                "read past EOF: {path} (len {}, want {}..{})",
                entry.len,
                offset,
                offset + len
            )));
        }
        let mut out = Vec::with_capacity(len as usize);
        let mut local = true;
        let mut pos = 0u64; // absolute file offset of current block start
        for block in &entry.blocks {
            let blen = block.data.len() as u64;
            let start = offset.max(pos);
            let end = (offset + len).min(pos + blen);
            if start < end {
                out.extend_from_slice(&block.data[(start - pos) as usize..(end - pos) as usize]);
                if let Some(n) = reader_node {
                    local &= block.replicas.contains(&n);
                }
            }
            pos += blen;
            if pos >= offset + len {
                break;
            }
        }
        self.metrics.record_read(reader_node, out.len() as u64);
        if let Some(n) = reader_node {
            self.metrics.record_locality(n, local);
        }
        Ok(out)
    }

    /// File length in bytes.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if the path is missing.
    pub fn len(&self, path: &str) -> Result<u64> {
        Ok(self.entry(path)?.len)
    }

    /// True iff the path exists (closed files only).
    pub fn exists(&self, path: &str) -> bool {
        self.inner.read().get(path).is_some()
    }

    /// Block-aligned input splits with replica hosts, as
    /// `FileInputFormat.getSplits` would produce.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if the path is missing.
    pub fn splits(&self, path: &str) -> Result<Vec<FileSplit>> {
        let entry = self.entry(path)?;
        let mut splits = Vec::with_capacity(entry.blocks.len());
        let mut offset = 0u64;
        for block in &entry.blocks {
            splits.push(FileSplit {
                path: path.to_string(),
                offset,
                len: block.data.len() as u64,
                hosts: block.replicas.clone(),
            });
            offset += block.data.len() as u64;
        }
        Ok(splits)
    }

    /// All closed files whose path starts with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.read().list(prefix)
    }

    /// Delete a file; deleting a missing file is not an error (mirrors
    /// `fs -rm -f`). Returns whether something was removed.
    pub fn delete(&self, path: &str) -> bool {
        let removed = self.inner.write().remove(path);
        if removed {
            if let Some(cache) = self.cache_handle() {
                cache.invalidate_path(path);
            }
        }
        removed
    }

    /// Delete every file under a prefix; returns the number removed.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let files = self.list(prefix);
        let mut removed = Vec::with_capacity(files.len());
        {
            let mut ns = self.inner.write();
            for f in files {
                if ns.remove(&f) {
                    removed.push(f);
                }
            }
        }
        if let Some(cache) = self.cache_handle() {
            for f in &removed {
                cache.invalidate_path(f);
            }
        }
        removed.len()
    }

    /// Rename a file.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if `from` is missing or `to` exists.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.write().rename(from, to)?;
        if let Some(cache) = self.cache_handle() {
            cache.invalidate_path(from);
            cache.invalidate_path(to);
        }
        Ok(())
    }

    /// Total bytes stored across all closed files.
    pub fn total_bytes(&self) -> u64 {
        self.inner.read().total_bytes()
    }

    fn entry(&self, path: &str) -> Result<FileEntry> {
        self.inner
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| HdmError::Dfs(format!("no such file: {path}")))
    }

    fn finish_file(&self, path: &str, blocks: Vec<namespace::Block>, len: u64) {
        self.inner.write().close_file(path, blocks, len);
        // A freshly-published file may reuse a previously-cached path
        // (e.g. INSERT OVERWRITE recreating the same part files).
        if let Some(cache) = self.cache_handle() {
            cache.invalidate_path(path);
        }
    }

    /// Deterministic replica placement: first replica on the writer's
    /// node, the rest striped across the remaining nodes starting from a
    /// hash of `(path, block_index)`.
    fn place_replicas(&self, path: &str, block_index: usize, writer: NodeId) -> Vec<NodeId> {
        let n = self.config.num_nodes;
        let want = self.config.replication.min(n as usize).max(1);
        let mut replicas = Vec::with_capacity(want);
        replicas.push(NodeId(writer.0 % n));
        let seed = hdm_common::partition::fnv1a(path.as_bytes())
            ^ (block_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = (seed % n as u64) as u32;
        while replicas.len() < want {
            let candidate = NodeId(next % n);
            if !replicas.contains(&candidate) {
                replicas.push(candidate);
            }
            next = next.wrapping_add(1);
        }
        replicas
    }
}

/// Streaming writer returned by [`Dfs::create`]. Data becomes visible
/// only after [`DfsWriter::close`]; a dropped-without-close writer
/// leaves no file behind (the open entry is discarded).
#[derive(Debug)]
pub struct DfsWriter {
    dfs: Dfs,
    path: String,
    writer_node: NodeId,
    pending: Vec<u8>,
    blocks: Vec<namespace::Block>,
    closed: bool,
}

impl DfsWriter {
    /// Append bytes, cutting blocks at the configured block size.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if the writer is already closed.
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        if self.closed {
            return Err(HdmError::Dfs(format!("write after close: {}", self.path)));
        }
        self.pending.extend_from_slice(data);
        let bs = self.dfs.config.block_size;
        while self.pending.len() >= bs {
            let rest = self.pending.split_off(bs);
            let full = std::mem::replace(&mut self.pending, rest);
            self.cut_block(full);
        }
        Ok(())
    }

    /// Bytes written so far (including the unflushed tail).
    pub fn bytes_written(&self) -> u64 {
        self.blocks.iter().map(|b| b.data.len() as u64).sum::<u64>() + self.pending.len() as u64
    }

    /// Flush the tail block and publish the file.
    ///
    /// # Errors
    /// [`HdmError::Dfs`] if already closed.
    pub fn close(mut self) -> Result<()> {
        if self.closed {
            return Err(HdmError::Dfs(format!("double close: {}", self.path)));
        }
        if !self.pending.is_empty() {
            let tail = std::mem::take(&mut self.pending);
            self.cut_block(tail);
        }
        let blocks = std::mem::take(&mut self.blocks);
        let len = blocks.iter().map(|b| b.data.len() as u64).sum();
        // Replicated write: each replica is one disk write on its node.
        for b in &blocks {
            for &r in &b.replicas {
                self.dfs.metrics.record_write(Some(r), b.data.len() as u64);
            }
        }
        self.dfs.finish_file(&self.path, blocks, len);
        self.closed = true;
        Ok(())
    }

    fn cut_block(&mut self, data: Vec<u8>) {
        let replicas = self
            .dfs
            .place_replicas(&self.path, self.blocks.len(), self.writer_node);
        self.blocks.push(namespace::Block {
            data: Bytes::from(data),
            replicas,
        });
    }
}

impl Drop for DfsWriter {
    fn drop(&mut self) {
        if !self.closed {
            // Abandon the open entry so half-written files never appear.
            self.dfs.inner.write().abort_open(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 10,
            replication: 2,
            num_nodes: 4,
        })
    }

    #[test]
    fn write_read_round_trip() {
        let dfs = small_fs();
        let mut w = dfs.create("/a", NodeId(0)).unwrap();
        w.write(b"0123456789abcdefghij!").unwrap();
        w.close().unwrap();
        assert_eq!(dfs.read_all("/a").unwrap(), b"0123456789abcdefghij!");
        assert_eq!(dfs.len("/a").unwrap(), 21);
    }

    #[test]
    fn blocks_cut_at_block_size() {
        let dfs = small_fs();
        let mut w = dfs.create("/b", NodeId(2)).unwrap();
        for _ in 0..5 {
            w.write(b"0123456").unwrap(); // 35 bytes total
        }
        w.close().unwrap();
        let splits = dfs.splits("/b").unwrap();
        assert_eq!(splits.len(), 4); // 10+10+10+5
        assert_eq!(splits[3].len, 5);
        assert_eq!(splits[1].offset, 10);
        for s in &splits {
            assert_eq!(s.hosts.len(), 2);
            assert_eq!(s.hosts[0], NodeId(2)); // writer-local first replica
        }
    }

    #[test]
    fn range_read_spans_blocks() {
        let dfs = small_fs();
        let mut w = dfs.create("/c", NodeId(1)).unwrap();
        w.write(b"aaaaaaaaaabbbbbbbbbbcc").unwrap();
        w.close().unwrap();
        let got = dfs.read_range("/c", 8, 6, Some(NodeId(1))).unwrap();
        assert_eq!(got, b"aabbbb");
        assert!(dfs.read_range("/c", 20, 5, None).is_err());
    }

    #[test]
    fn create_existing_fails() {
        let dfs = small_fs();
        dfs.create("/d", NodeId(0)).unwrap().close().unwrap();
        assert!(dfs.create("/d", NodeId(0)).is_err());
    }

    #[test]
    fn unclosed_writer_leaves_no_file() {
        let dfs = small_fs();
        {
            let mut w = dfs.create("/ghost", NodeId(0)).unwrap();
            w.write(b"data").unwrap();
            // dropped without close
        }
        assert!(!dfs.exists("/ghost"));
        // Path is reusable after the abort.
        dfs.create("/ghost", NodeId(0)).unwrap().close().unwrap();
        assert!(dfs.exists("/ghost"));
    }

    #[test]
    fn open_file_is_invisible_until_close() {
        let dfs = small_fs();
        let w = dfs.create("/e", NodeId(0)).unwrap();
        assert!(!dfs.exists("/e"));
        assert!(dfs.read_all("/e").is_err());
        w.close().unwrap();
        assert!(dfs.exists("/e"));
    }

    #[test]
    fn list_delete_rename() {
        let dfs = small_fs();
        for p in ["/t/x/1", "/t/x/2", "/t/y/1"] {
            dfs.create(p, NodeId(0)).unwrap().close().unwrap();
        }
        assert_eq!(
            dfs.list("/t/x/"),
            vec!["/t/x/1".to_string(), "/t/x/2".to_string()]
        );
        assert_eq!(dfs.delete_prefix("/t/x/"), 2);
        assert!(!dfs.exists("/t/x/1"));
        dfs.rename("/t/y/1", "/t/z").unwrap();
        assert!(dfs.exists("/t/z"));
        assert!(dfs.rename("/missing", "/nope").is_err());
        assert!(!dfs.delete("/missing"));
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let dfs = Dfs::new(DfsConfig {
            block_size: 4,
            replication: 3,
            num_nodes: 8,
        });
        let mut w = dfs.create("/r", NodeId(5)).unwrap();
        w.write(&[0u8; 64]).unwrap();
        w.close().unwrap();
        for s in dfs.splits("/r").unwrap() {
            let mut hosts = s.hosts.clone();
            hosts.sort();
            hosts.dedup();
            assert_eq!(hosts.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn metrics_count_reads_and_writes() {
        let dfs = small_fs();
        let mut w = dfs.create("/m", NodeId(0)).unwrap();
        w.write(&[1u8; 25]).unwrap();
        w.close().unwrap();
        // 3 blocks × 2 replicas × bytes
        assert_eq!(dfs.metrics().total_bytes_written(), 50);
        dfs.read_all("/m").unwrap();
        assert_eq!(dfs.metrics().total_bytes_read(), 25);
    }

    #[test]
    fn attached_faults_inject_transient_range_read_errors() {
        let dfs = small_fs();
        let plan = hdm_faults::FaultPlan::with_seed(3);
        // Find a path the plan marks flaky before creating it.
        let path = (0..512)
            .map(|i| format!("/warehouse/t/part-{i}"))
            .find(|p| {
                hdm_faults::FaultPlan::with_seed(3)
                    .storage_error(p)
                    .is_some()
            })
            .expect("no flaky path in 512 candidates");
        let mut w = dfs.create(&path, NodeId(0)).unwrap();
        w.write(&[7u8; 10]).unwrap();
        w.close().unwrap();
        dfs.attach_faults(&plan);
        // The flaky path fails at most twice, then heals; whole-file
        // reads are never injected.
        let mut failures = 0;
        let data = loop {
            match dfs.read_range(&path, 0, 10, None) {
                Ok(d) => break d,
                Err(e) => {
                    assert_eq!(e.subsystem(), "dfs");
                    failures += 1;
                    assert!(failures <= 2, "injected fault never heals");
                }
            }
        };
        assert_eq!(data, vec![7u8; 10]);
        assert!(failures >= 1, "chosen path must actually be flaky");
        assert!(dfs.read_all(&path).is_ok());
        // Detaching (a disabled plan) restores clean reads everywhere.
        dfs.attach_faults(&hdm_faults::FaultPlan::disabled());
        assert!(dfs.read_range(&path, 0, 10, None).is_ok());
    }

    #[derive(Debug, Default)]
    struct RecordingCache {
        entries: std::sync::Mutex<std::collections::HashMap<(String, u64, u64), Vec<u8>>>,
        hits: std::sync::atomic::AtomicU64,
    }

    impl RangeCache for RecordingCache {
        fn lookup(&self, path: &str, offset: u64, len: u64) -> Option<Vec<u8>> {
            let got = self
                .entries
                .lock()
                .unwrap()
                .get(&(path.to_string(), offset, len))
                .cloned();
            if got.is_some() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            got
        }
        fn admit(&self, path: &str, offset: u64, len: u64, bytes: &[u8]) {
            self.entries
                .lock()
                .unwrap()
                .insert((path.to_string(), offset, len), bytes.to_vec());
        }
        fn invalidate_path(&self, path: &str) {
            self.entries.lock().unwrap().retain(|k, _| k.0 != path);
        }
    }

    #[test]
    fn read_cache_serves_hits_and_is_invalidated_on_mutation() {
        let dfs = small_fs();
        let mut w = dfs.create("/warehouse/t/part-0", NodeId(0)).unwrap();
        w.write(b"0123456789").unwrap();
        w.close().unwrap();

        let cache = Arc::new(RecordingCache::default());
        dfs.attach_read_cache(Some(cache.clone()));

        // Miss + admit, then a hit served without touching disk metrics.
        let before = dfs.metrics().total_bytes_read();
        assert_eq!(
            dfs.read_range("/warehouse/t/part-0", 2, 5, None).unwrap(),
            b"23456"
        );
        let after_miss = dfs.metrics().total_bytes_read();
        assert_eq!(after_miss - before, 5);
        assert_eq!(
            dfs.read_range("/warehouse/t/part-0", 2, 5, None).unwrap(),
            b"23456"
        );
        assert_eq!(dfs.metrics().total_bytes_read(), after_miss);
        assert_eq!(cache.hits.load(std::sync::atomic::Ordering::Relaxed), 1);

        // Rewriting the path (delete + recreate) must invalidate.
        assert!(dfs.delete("/warehouse/t/part-0"));
        let mut w = dfs.create("/warehouse/t/part-0", NodeId(0)).unwrap();
        w.write(b"abcdefghij").unwrap();
        w.close().unwrap();
        assert_eq!(
            dfs.read_range("/warehouse/t/part-0", 2, 5, None).unwrap(),
            b"cdefg"
        );

        // Detach restores the uncached path.
        dfs.attach_read_cache(None);
        assert_eq!(
            dfs.read_range("/warehouse/t/part-0", 0, 3, None).unwrap(),
            b"abc"
        );
    }

    #[test]
    fn locality_accounting() {
        let dfs = small_fs();
        let mut w = dfs.create("/loc", NodeId(3)).unwrap();
        w.write(&[1u8; 10]).unwrap();
        w.close().unwrap();
        // Node 3 holds the first replica of every block: local.
        dfs.read_range("/loc", 0, 10, Some(NodeId(3))).unwrap();
        let (local, remote) = dfs.metrics().locality_counts();
        assert_eq!(local, 1);
        assert_eq!(remote, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn chunked_writes_round_trip(
            chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..12),
            block_size in 1usize..32,
        ) {
            let dfs = Dfs::new(DfsConfig { block_size, replication: 2, num_nodes: 3 });
            let mut w = dfs.create("/p", NodeId(0)).unwrap();
            let mut expect = Vec::new();
            for c in &chunks {
                w.write(c).unwrap();
                expect.extend_from_slice(c);
            }
            w.close().unwrap();
            prop_assert_eq!(dfs.read_all("/p").unwrap(), expect.clone());
            // Splits tile the file exactly.
            let splits = dfs.splits("/p").unwrap();
            let mut pos = 0u64;
            for s in &splits {
                prop_assert_eq!(s.offset, pos);
                prop_assert!(s.len <= block_size as u64);
                pos += s.len;
            }
            prop_assert_eq!(pos, expect.len() as u64);
        }

        #[test]
        fn arbitrary_range_reads_match(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            a in 0usize..200,
            b in 0usize..200,
        ) {
            let dfs = Dfs::new(DfsConfig { block_size: 7, replication: 1, num_nodes: 2 });
            let mut w = dfs.create("/q", NodeId(0)).unwrap();
            w.write(&data).unwrap();
            w.close().unwrap();
            let lo = a.min(b) % data.len();
            let hi = (a.max(b) % data.len()).max(lo);
            let got = dfs.read_range("/q", lo as u64, (hi - lo) as u64, None).unwrap();
            prop_assert_eq!(got, data[lo..hi].to_vec());
        }
    }
}
