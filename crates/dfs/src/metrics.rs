//! Per-node I/O accounting used by the cluster timing model.

use crate::NodeId;
use hdm_obs::{Counter, ObsHandle};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Registry handles mirrored into an attached `hdm-obs` sink; fetched
/// once at attach time so the record paths stay lock-free when obs is
/// disabled or absent.
#[derive(Debug)]
struct DfsObs {
    read_bytes: Counter,
    write_bytes: Counter,
    remote_reads: Counter,
}

/// Lock-free counters for DFS traffic.
///
/// Reads/writes without a known node are tallied in a global bucket only.
#[derive(Debug)]
pub struct DfsMetrics {
    read_per_node: Vec<AtomicU64>,
    write_per_node: Vec<AtomicU64>,
    read_total: AtomicU64,
    write_total: AtomicU64,
    local_reads: AtomicU64,
    remote_reads: AtomicU64,
    obs: RwLock<Option<DfsObs>>,
    obs_on: AtomicBool,
}

impl DfsMetrics {
    pub(crate) fn new(num_nodes: u32) -> DfsMetrics {
        DfsMetrics {
            read_per_node: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
            write_per_node: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
            read_total: AtomicU64::new(0),
            write_total: AtomicU64::new(0),
            local_reads: AtomicU64::new(0),
            remote_reads: AtomicU64::new(0),
            obs: RwLock::new(None),
            obs_on: AtomicBool::new(false),
        }
    }

    /// Mirror DFS traffic into an observability sink. Attaching a
    /// disabled handle is a no-op; the record paths then cost one extra
    /// relaxed load.
    pub fn attach_obs(&self, obs: &ObsHandle) {
        let attached = DfsObs {
            // hdm-allow(conf-key-registry): metric names, not conf lookups
            read_bytes: obs.counter("dfs.read.bytes", ""),
            // hdm-allow(conf-key-registry): metric names, not conf lookups
            write_bytes: obs.counter("dfs.write.bytes", ""),
            // hdm-allow(conf-key-registry): metric names, not conf lookups
            remote_reads: obs.counter("dfs.remote.reads", ""),
        };
        *self.obs.write() = Some(attached);
        self.obs_on.store(obs.is_enabled(), Ordering::Release);
    }

    pub(crate) fn record_read(&self, node: Option<NodeId>, bytes: u64) {
        self.read_total.fetch_add(bytes, Ordering::Relaxed);
        if let Some(n) = node {
            if let Some(c) = self.read_per_node.get(n.0 as usize) {
                c.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        if self.obs_on.load(Ordering::Relaxed) {
            if let Some(o) = self.obs.read().as_ref() {
                o.read_bytes.add(bytes);
            }
        }
    }

    pub(crate) fn record_write(&self, node: Option<NodeId>, bytes: u64) {
        self.write_total.fetch_add(bytes, Ordering::Relaxed);
        if let Some(n) = node {
            if let Some(c) = self.write_per_node.get(n.0 as usize) {
                c.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        if self.obs_on.load(Ordering::Relaxed) {
            if let Some(o) = self.obs.read().as_ref() {
                o.write_bytes.add(bytes);
            }
        }
    }

    pub(crate) fn record_locality(&self, _node: NodeId, local: bool) {
        if local {
            self.local_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.remote_reads.fetch_add(1, Ordering::Relaxed);
            if self.obs_on.load(Ordering::Relaxed) {
                if let Some(o) = self.obs.read().as_ref() {
                    o.remote_reads.add(1);
                }
            }
        }
    }

    /// Total bytes read through the DFS.
    pub fn total_bytes_read(&self) -> u64 {
        self.read_total.load(Ordering::Relaxed)
    }

    /// Total bytes written (each replica counts once).
    pub fn total_bytes_written(&self) -> u64 {
        self.write_total.load(Ordering::Relaxed)
    }

    /// Bytes read attributed to one node.
    pub fn bytes_read_by(&self, node: NodeId) -> u64 {
        self.read_per_node
            .get(node.0 as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Bytes written attributed to one node.
    pub fn bytes_written_by(&self, node: NodeId) -> u64 {
        self.write_per_node
            .get(node.0 as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// `(local, remote)` counts of locality-tracked range reads.
    pub fn locality_counts(&self) -> (u64, u64) {
        (
            self.local_reads.load(Ordering::Relaxed),
            self.remote_reads.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DfsMetrics::new(2);
        m.record_read(Some(NodeId(0)), 10);
        m.record_read(None, 5);
        m.record_write(Some(NodeId(1)), 7);
        assert_eq!(m.total_bytes_read(), 15);
        assert_eq!(m.bytes_read_by(NodeId(0)), 10);
        assert_eq!(m.bytes_read_by(NodeId(1)), 0);
        assert_eq!(m.total_bytes_written(), 7);
        assert_eq!(m.bytes_written_by(NodeId(1)), 7);
    }

    #[test]
    fn attached_obs_mirrors_traffic() {
        let m = DfsMetrics::new(2);
        let obs = hdm_obs::ObsHandle::enabled_with_stride(1);
        m.attach_obs(&obs);
        m.record_read(Some(NodeId(0)), 11);
        m.record_write(None, 6);
        m.record_locality(NodeId(1), false);
        let snap = obs.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
        };
        // hdm-allow(conf-key-registry): metric names, not conf lookups
        assert_eq!(get("dfs.read.bytes"), Some(11));
        // hdm-allow(conf-key-registry): metric names, not conf lookups
        assert_eq!(get("dfs.write.bytes"), Some(6));
        // hdm-allow(conf-key-registry): metric names, not conf lookups
        assert_eq!(get("dfs.remote.reads"), Some(1));
    }

    #[test]
    fn out_of_range_node_is_safe() {
        let m = DfsMetrics::new(1);
        m.record_read(Some(NodeId(99)), 10);
        assert_eq!(m.total_bytes_read(), 10);
        assert_eq!(m.bytes_read_by(NodeId(99)), 0);
    }
}
