//! The namenode: path → file metadata + block data.

use crate::NodeId;
use bytes::Bytes;
use hdm_common::error::{HdmError, Result};
use std::collections::{BTreeMap, BTreeSet};

/// One replicated block.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Block contents (shared, immutable once published).
    pub data: Bytes,
    /// Nodes holding a replica; the first is the writer-local one.
    pub replicas: Vec<NodeId>,
}

/// Metadata + data for one closed file.
#[derive(Debug, Clone)]
pub(crate) struct FileEntry {
    pub blocks: Vec<Block>,
    pub len: u64,
}

/// The mutable namespace behind the [`crate::Dfs`] lock.
#[derive(Debug, Default)]
pub(crate) struct Namespace {
    files: BTreeMap<String, FileEntry>,
    open: BTreeSet<String>,
}

impl Namespace {
    pub fn new() -> Namespace {
        Namespace::default()
    }

    /// True if the path names a closed file or an in-flight writer.
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path) || self.open.contains(path)
    }

    pub fn get(&self, path: &str) -> Option<&FileEntry> {
        self.files.get(path)
    }

    pub fn insert_open(&mut self, path: &str) {
        self.open.insert(path.to_string());
    }

    pub fn abort_open(&mut self, path: &str) {
        self.open.remove(path);
    }

    pub fn close_file(&mut self, path: &str, blocks: Vec<Block>, len: u64) {
        self.open.remove(path);
        self.files
            .insert(path.to_string(), FileEntry { blocks, len });
    }

    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        if self.contains(to) {
            return Err(HdmError::Dfs(format!("rename target exists: {to}")));
        }
        match self.files.remove(from) {
            Some(entry) => {
                self.files.insert(to.to_string(), entry);
                Ok(())
            }
            None => Err(HdmError::Dfs(format!("rename source missing: {from}"))),
        }
    }

    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_entries_block_creation_but_are_not_listed() {
        let mut ns = Namespace::new();
        ns.insert_open("/x");
        assert!(ns.contains("/x"));
        assert!(ns.get("/x").is_none());
        assert!(ns.list("/").is_empty());
        ns.close_file("/x", Vec::new(), 0);
        assert_eq!(ns.list("/"), vec!["/x".to_string()]);
    }

    #[test]
    fn list_uses_range_scan() {
        let mut ns = Namespace::new();
        for p in ["/a/1", "/a/2", "/b/1"] {
            ns.close_file(p, Vec::new(), 0);
        }
        assert_eq!(ns.list("/a/"), vec!["/a/1".to_string(), "/a/2".to_string()]);
        assert_eq!(
            ns.list(""),
            vec!["/a/1".to_string(), "/a/2".to_string(), "/b/1".to_string()]
        );
    }

    #[test]
    fn rename_conflicts_detected() {
        let mut ns = Namespace::new();
        ns.close_file("/a", Vec::new(), 1);
        ns.close_file("/b", Vec::new(), 2);
        assert!(ns.rename("/a", "/b").is_err());
        assert!(ns.rename("/a", "/c").is_ok());
        assert!(!ns.contains("/a"));
        assert!(ns.contains("/c"));
    }
}
