//! Input splits: the unit of map-task scheduling.

use crate::NodeId;

/// A contiguous byte range of one file, plus the nodes that hold it.
///
/// Splits are block-aligned (one split per block), matching the paper's
/// Hadoop configuration where the number of map tasks follows the number
/// of 64 MB input blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSplit {
    /// File path in the DFS.
    pub path: String,
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Nodes holding a replica of this range (first = writer-local).
    pub hosts: Vec<NodeId>,
}

impl FileSplit {
    /// True iff `node` can read this split without crossing the network.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.hosts.contains(&node)
    }

    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

impl std::fmt::Display for FileSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}..{})", self.path, self.offset, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let s = FileSplit {
            path: "/f".into(),
            offset: 0,
            len: 10,
            hosts: vec![NodeId(1), NodeId(3)],
        };
        assert!(s.is_local_to(NodeId(3)));
        assert!(!s.is_local_to(NodeId(0)));
        assert_eq!(s.end(), 10);
        assert_eq!(s.to_string(), "/f[0..10)");
    }
}
