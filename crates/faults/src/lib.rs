#![warn(missing_docs)]

//! # hdm-faults
//!
//! Deterministic fault injection and the recovery policy shared by both
//! execution engines.
//!
//! The paper buys its speedups by replacing Hadoop MapReduce with
//! DataMPI, and inherits MPI's classic weakness in the trade: one failed
//! rank kills the whole job, where Hadoop re-executes individual task
//! attempts. This crate supplies the two halves of the answer:
//!
//! * [`FaultPlan`] — a seed-deterministic chaos source. Every decision
//!   (crash this task attempt? drop this message? stall this node? fail
//!   this read?) is a pure function of `(seed, site, rank, attempt/seq)`,
//!   hashed splitmix64-style and fed through the vendored xorshift-family
//!   [`rand::rngs::StdRng`]. No wall clock, no global state: the same
//!   seed replays the same faults regardless of thread interleaving, so
//!   recovery is testable and chaos runs are reproducible.
//! * [`RecoveryPolicy`] — the knobs recovery sites consult: attempts per
//!   task, bounded exponential backoff, and the receive deadline that
//!   turns "blocks forever on a dead peer" into
//!   [`HdmError::Timeout`](hdm_common::error::HdmError::Timeout).
//!
//! When `hive.ft.enabled` is false (the default) every injection site
//! reduces to a single relaxed atomic load — the same discipline
//! `hdm-obs` holds itself to, and pinned by the `ft_overhead` criterion
//! group.
//!
//! Injection is suppressed once a task reaches attempt
//! [`INJECT_HORIZON`]: with the default `hive.ft.max.attempts = 4` a
//! task's final attempt is always fault-free, so task-level recovery
//! converges; configuring fewer attempts makes exhaustion (and the
//! driver's fallback-engine path) reachable on purpose.

use hdm_common::conf::JobConf;
use hdm_common::error::{HdmError, Result};
use hdm_obs::ObsHandle;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Attempt index from which injection is suppressed: a task that reaches
/// this attempt runs fault-free, so recovery always converges when
/// `hive.ft.max.attempts > INJECT_HORIZON`.
pub const INJECT_HORIZON: u32 = 3;

/// Crash probability (permille) for a task's first attempt; halves on
/// each retry.
const CRASH_PERMILLE: u64 = 200;
/// Upper bound (exclusive) on the "crash after N records" countdown.
const CRASH_WINDOW: u64 = 512;
/// Per-message drop probability (permille) on the MPI wire.
const DROP_PERMILLE: u64 = 1;
/// Per-message delay probability (permille) on the MPI wire.
const DELAY_PERMILLE: u64 = 5;
/// Injected message delay range (milliseconds, inclusive).
const DELAY_MS: std::ops::RangeInclusive<u64> = 1..=3;
/// Straggler-stall probability (permille) at task start.
const STRAGGLER_PERMILLE: u64 = 50;
/// Injected straggler stall range (milliseconds, inclusive).
const STALL_MS: std::ops::RangeInclusive<u64> = 2..=15;
/// Probability (permille) that a DFS path is transiently flaky.
const STORAGE_FLAKY_PERMILLE: u64 = 25;
/// Cap on the exponential-backoff shift so the delay cannot overflow.
const BACKOFF_MAX_SHIFT: u32 = 6;
/// Ceiling on a single backoff delay.
const BACKOFF_CAP: Duration = Duration::from_secs(1);

/// A named injection point. Decisions are keyed by site so the same
/// `(rank, attempt)` draws independent faults at each layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A DataMPI O (communication-attached map) task attempt.
    OTask,
    /// A DataMPI A (communication-attached reduce) task attempt.
    ATask,
    /// A MapReduce map task attempt.
    MapTask,
    /// A MapReduce reduce task attempt.
    ReduceTask,
    /// One message handed to `Endpoint::isend` in the MPI layer.
    MpiSend,
    /// One ranged read served by the simulated DFS.
    StorageRead,
}

impl Site {
    /// Stable mixing key; part of the on-disk contract of a seed.
    const fn key(self) -> u64 {
        match self {
            Site::OTask => 0x4f54_4153,
            Site::ATask => 0x4154_4153,
            Site::MapTask => 0x4d41_5054,
            Site::ReduceTask => 0x5244_4354,
            Site::MpiSend => 0x4d50_4953,
            Site::StorageRead => 0x5354_4f52,
        }
    }

    /// Short label used in obs counter labels and error messages.
    pub const fn label(self) -> &'static str {
        match self {
            Site::OTask => "o-task",
            Site::ATask => "a-task",
            Site::MapTask => "map-task",
            Site::ReduceTask => "reduce-task",
            Site::MpiSend => "mpi-send",
            Site::StorageRead => "storage-read",
        }
    }
}

#[derive(Debug)]
struct PlanInner {
    enabled: AtomicBool,
    seed: u64,
    obs: ObsHandle,
    /// Injected read failures already delivered, per path: a flaky path
    /// fails its first k reads, then heals (a *transient* fault — the
    /// retrying attempt must be able to succeed).
    storage_failures: Mutex<HashMap<String, u32>>,
}

/// The seed-deterministic chaos source. Cheap to clone; all clones share
/// the same seed, enable flag, and transient-failure bookkeeping.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    fn build(enabled: bool, seed: u64, obs: ObsHandle) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanInner {
                enabled: AtomicBool::new(enabled),
                seed,
                obs,
                storage_failures: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// A plan that injects nothing; every probe is one relaxed load.
    pub fn disabled() -> FaultPlan {
        FaultPlan::build(false, 0, ObsHandle::disabled())
    }

    /// An enabled plan over `seed` with no obs recording (tests).
    pub fn with_seed(seed: u64) -> FaultPlan {
        FaultPlan::build(true, seed, ObsHandle::disabled())
    }

    /// Build from `hive.ft.*`, recording injection/recovery counters into
    /// `obs`.
    ///
    /// # Errors
    /// Returns [`HdmError::Config`] if a `hive.ft.*` value is malformed.
    pub fn from_conf(conf: &JobConf, obs: &ObsHandle) -> Result<FaultPlan> {
        Ok(FaultPlan::build(
            conf.ft_enabled()?,
            conf.ft_seed()?,
            obs.clone(),
        ))
    }

    /// Whether injection is active — exactly one relaxed atomic load, the
    /// full cost of a disabled injection site.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// One decision stream per `(site, a, b)`: splitmix64-style mixing
    /// into the vendored xorshift-family `StdRng`.
    fn rng(&self, site: Site, a: u64, b: u64) -> StdRng {
        let mut x = self.inner.seed ^ site.key().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = x.wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        x = x.wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
        StdRng::seed_from_u64(x)
    }

    fn permille_hit(&self, site: Site, a: u64, b: u64, permille: u64) -> bool {
        permille > 0 && self.rng(site, a, b).random_range(0..1000u64) < permille
    }

    /// Should `(site, rank)` attempt `attempt` crash — and if so, after
    /// how many records? Decays by attempt; `None` at or past
    /// [`INJECT_HORIZON`] or when the plan is disabled.
    pub fn crash_after(&self, site: Site, rank: usize, attempt: u32) -> Option<u64> {
        if !self.is_enabled() || attempt >= INJECT_HORIZON {
            return None;
        }
        let mut rng = self.rng(site, rank as u64, attempt as u64);
        if rng.random_range(0..1000u64) < (CRASH_PERMILLE >> attempt) {
            Some(rng.random_range(0..CRASH_WINDOW))
        } else {
            None
        }
    }

    /// Pure decision form of [`FaultPlan::crash_after`], for tests that
    /// search seeds with a particular fault shape.
    pub fn would_crash(&self, site: Site, rank: usize, attempt: u32) -> bool {
        self.crash_after(site, rank, attempt).is_some()
    }

    /// Should message `seq` out of `src` be dropped on the wire?
    pub fn should_drop(&self, site: Site, src: usize, seq: u64) -> bool {
        self.is_enabled() && self.permille_hit(site, src as u64 ^ 0xd807, seq, DROP_PERMILLE)
    }

    /// Artificial network delay for message `seq` out of `src`, if any.
    pub fn send_delay(&self, site: Site, src: usize, seq: u64) -> Option<Duration> {
        if !self.is_enabled() || !self.permille_hit(site, src as u64 ^ 0x3a11, seq, DELAY_PERMILLE)
        {
            return None;
        }
        let ms = self
            .rng(site, src as u64 ^ 0x3a12, seq)
            .random_range(DELAY_MS);
        Some(Duration::from_millis(ms))
    }

    /// Slow-node straggler stall at the start of `(site, rank, attempt)`,
    /// if any. Stalls slow a task without failing it.
    pub fn stall(&self, site: Site, rank: usize, attempt: u32) -> Option<Duration> {
        if !self.is_enabled()
            || !self.permille_hit(
                site,
                rank as u64 ^ 0x57a1,
                attempt as u64,
                STRAGGLER_PERMILLE,
            )
        {
            return None;
        }
        let ms = self
            .rng(site, rank as u64 ^ 0x57a2, attempt as u64)
            .random_range(STALL_MS);
        Some(Duration::from_millis(ms))
    }

    /// Transient read failure for `path`, if the plan marked it flaky and
    /// its failure budget is not yet spent. A flaky path fails its first
    /// 1–2 reads then heals, so a retried attempt succeeds.
    pub fn storage_error(&self, path: &str) -> Option<HdmError> {
        if !self.is_enabled() {
            return None;
        }
        let h = fnv1a(path.as_bytes());
        let mut rng = self.rng(Site::StorageRead, h, 0);
        if rng.random_range(0..1000u64) >= STORAGE_FLAKY_PERMILLE {
            return None;
        }
        let budget = rng.random_range(1..=2u32);
        let nth = {
            let mut delivered = self.inner.storage_failures.lock();
            let count = delivered.entry(path.to_string()).or_insert(0);
            if *count >= budget {
                return None;
            }
            *count += 1;
            *count
        };
        self.note_injected(Site::StorageRead);
        Some(HdmError::Dfs(format!(
            "injected transient read error on {path} ({nth} of {budget})"
        )))
    }

    fn bump(&self, name: &str, labels: &str) {
        if self.inner.obs.is_enabled() {
            self.inner.obs.counter(name, labels).add(1);
        }
    }

    /// Record one injected fault (obs counter `ft.injected`).
    pub fn note_injected(&self, site: Site) {
        self.bump("ft.injected", &format!("site={}", site.label()));
    }

    /// Record one detected fault (obs counter `ft.detected`).
    pub fn note_detected(&self, site: Site) {
        self.bump("ft.detected", &format!("site={}", site.label()));
    }

    /// Record one task retry (obs counter `ft.retries`).
    pub fn note_retry(&self, site: Site) {
        self.bump("ft.retries", &format!("site={}", site.label()));
    }

    /// Record one engine fallback (obs counter `ft.fallbacks`).
    pub fn note_fallback(&self, from: &str, to: &str) {
        self.bump("ft.fallbacks", &format!("from={from},to={to}"));
    }

    /// Record time a recovery site spent sleeping in backoff (obs timer
    /// `ft.backoff.ms`).
    pub fn observe_backoff(&self, site: Site, waited: Duration) {
        if self.inner.obs.is_enabled() {
            if let Some(width) = std::num::NonZeroU64::new(5) {
                self.inner
                    .obs
                    .timer("ft.backoff.ms", &format!("site={}", site.label()), width)
                    .observe(waited.as_millis() as u64);
            }
        }
    }

    /// The obs handle injections are recorded into.
    pub fn obs(&self) -> &ObsHandle {
        &self.inner.obs
    }
}

/// FNV-1a over a byte string; keys per-path storage decisions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The recovery knobs consulted by retry supervisors and the MPI layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Attempts per task before the job is declared failed
    /// (`hive.ft.max.attempts`).
    pub max_attempts: u32,
    /// Base of the bounded exponential backoff
    /// (`hive.ft.backoff.base.ms`).
    pub backoff_base: Duration,
    /// Receive/wait deadline once fault tolerance is on
    /// (`hive.ft.recv.timeout.ms`).
    pub recv_timeout: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(10),
            recv_timeout: Duration::from_millis(2000),
        }
    }
}

impl RecoveryPolicy {
    /// Build from `hive.ft.*`.
    ///
    /// # Errors
    /// Returns [`HdmError::Config`] if a value is malformed or out of
    /// range.
    pub fn from_conf(conf: &JobConf) -> Result<RecoveryPolicy> {
        Ok(RecoveryPolicy {
            max_attempts: conf.ft_max_attempts()?,
            backoff_base: Duration::from_millis(conf.ft_backoff_base_ms()?),
            recv_timeout: Duration::from_millis(conf.ft_recv_timeout_ms()?),
        })
    }

    /// Delay before re-running attempt `attempt + 1`:
    /// `base * 2^attempt`, shift-capped and bounded by one second.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let shifted = self.backoff_base * (1u32 << attempt.min(BACKOFF_MAX_SHIFT));
        shifted.min(BACKOFF_CAP)
    }

    /// [`Self::backoff_delay`] with seed-deterministic jitter, so tasks
    /// that fail together do not all retry on the same beat. `key` mixes
    /// in whatever identifies the retrier (fault seed, site, rank); the
    /// same `(key, attempt)` always draws the same delay, keeping chaos
    /// runs replayable. The jittered delay lands in
    /// `[backoff_delay / 2, backoff_delay]`: staggered, but never past
    /// the pinned schedule bound.
    pub fn backoff_delay_jittered(&self, attempt: u32, key: u64) -> Duration {
        let full = self.backoff_delay(attempt);
        let micros = full.as_micros() as u64;
        if micros < 2 {
            return full;
        }
        // splitmix64 finalizer over (key, attempt) — no wall clock, no
        // shared RNG state.
        let mut z = key.wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let span = micros / 2;
        Duration::from_micros(micros - span + z % (span + 1))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use hdm_common::conf::{
        KEY_FT_BACKOFF_BASE_MS, KEY_FT_ENABLED, KEY_FT_MAX_ATTEMPTS, KEY_FT_SEED,
    };

    #[test]
    fn disabled_plan_injects_nothing() {
        let p = FaultPlan::disabled();
        assert!(!p.is_enabled());
        for rank in 0..64 {
            for attempt in 0..4 {
                assert_eq!(p.crash_after(Site::OTask, rank, attempt), None);
                assert!(p.stall(Site::MapTask, rank, attempt).is_none());
            }
            for seq in 0..256 {
                assert!(!p.should_drop(Site::MpiSend, rank, seq));
                assert!(p.send_delay(Site::MpiSend, rank, seq).is_none());
            }
        }
        assert!(p.storage_error("/warehouse/lineitem/part-0").is_none());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::with_seed(7);
        let b = FaultPlan::with_seed(7);
        let c = FaultPlan::with_seed(8);
        let mut diverged = false;
        for rank in 0..32 {
            for attempt in 0..INJECT_HORIZON {
                assert_eq!(
                    a.crash_after(Site::OTask, rank, attempt),
                    b.crash_after(Site::OTask, rank, attempt)
                );
                if a.would_crash(Site::OTask, rank, attempt)
                    != c.would_crash(Site::OTask, rank, attempt)
                {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "seeds 7 and 8 should not share a fault plan");
    }

    #[test]
    fn injection_stops_at_the_horizon() {
        for seed in 0..64u64 {
            let p = FaultPlan::with_seed(seed);
            for rank in 0..32 {
                for attempt in INJECT_HORIZON..INJECT_HORIZON + 4 {
                    assert_eq!(p.crash_after(Site::OTask, rank, attempt), None);
                    assert_eq!(p.crash_after(Site::MapTask, rank, attempt), None);
                }
            }
        }
    }

    #[test]
    fn some_seed_crashes_some_task() {
        let hit = (0..64u64).any(|seed| {
            let p = FaultPlan::with_seed(seed);
            (0..8).any(|rank| p.would_crash(Site::OTask, rank, 0))
        });
        assert!(hit, "crash probability is too low to ever fire");
    }

    #[test]
    fn storage_faults_are_transient() {
        // Find a path the plan marks flaky, then check it heals.
        let p = FaultPlan::with_seed(3);
        let flaky = (0..512)
            .map(|i| format!("/warehouse/t/part-{i}"))
            .find(|path| p.storage_error(path).is_some());
        let Some(path) = flaky else {
            panic!("no flaky path in 512 candidates; probability too low");
        };
        // The budget is at most 2, and one failure was already delivered.
        let mut failures = 1;
        while p.storage_error(&path).is_some() {
            failures += 1;
            assert!(failures <= 2, "storage fault on {path} never heals");
        }
        assert!(p.storage_error(&path).is_none(), "path must stay healed");
    }

    #[test]
    fn backoff_schedule_is_bounded_exponential() {
        let pol = RecoveryPolicy {
            backoff_base: Duration::from_millis(10),
            ..RecoveryPolicy::default()
        };
        assert_eq!(pol.backoff_delay(0), Duration::from_millis(10));
        assert_eq!(pol.backoff_delay(1), Duration::from_millis(20));
        assert_eq!(pol.backoff_delay(2), Duration::from_millis(40));
        assert_eq!(pol.backoff_delay(3), Duration::from_millis(80));
        // Capped: the shift saturates and the delay never passes 1s.
        assert_eq!(pol.backoff_delay(31), pol.backoff_delay(BACKOFF_MAX_SHIFT));
        assert!(pol.backoff_delay(31) <= Duration::from_secs(1));
        let big = RecoveryPolicy {
            backoff_base: Duration::from_millis(900),
            ..RecoveryPolicy::default()
        };
        assert_eq!(big.backoff_delay(4), Duration::from_secs(1));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let pol = RecoveryPolicy {
            backoff_base: Duration::from_millis(10),
            ..RecoveryPolicy::default()
        };
        let mut diverged = false;
        for attempt in 0..8u32 {
            let full = pol.backoff_delay(attempt);
            for key in 0..64u64 {
                let d = pol.backoff_delay_jittered(attempt, key);
                // Replayable: the same (key, attempt) draws the same delay.
                assert_eq!(d, pol.backoff_delay_jittered(attempt, key));
                // Bounded: staggered within [full/2, full], never past the
                // pinned exponential schedule.
                assert!(d <= full, "attempt {attempt} key {key}: {d:?} > {full:?}");
                assert!(
                    d >= full / 2,
                    "attempt {attempt} key {key}: {d:?} < {:?}",
                    full / 2
                );
                if d != pol.backoff_delay_jittered(attempt, key + 1) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "jitter never separated any two keys");
        let zero = RecoveryPolicy {
            backoff_base: Duration::ZERO,
            ..RecoveryPolicy::default()
        };
        assert_eq!(zero.backoff_delay_jittered(3, 9), Duration::ZERO);
    }

    #[test]
    fn conf_round_trip() {
        let conf = JobConf::new()
            .with(KEY_FT_ENABLED, "true")
            .with(KEY_FT_SEED, 99)
            .with(KEY_FT_MAX_ATTEMPTS, 2)
            .with(KEY_FT_BACKOFF_BASE_MS, 1);
        let plan = FaultPlan::from_conf(&conf, &ObsHandle::disabled()).unwrap();
        assert!(plan.is_enabled());
        assert_eq!(plan.seed(), 99);
        let pol = RecoveryPolicy::from_conf(&conf).unwrap();
        assert_eq!(pol.max_attempts, 2);
        assert_eq!(pol.backoff_base, Duration::from_millis(1));
        assert_eq!(pol.recv_timeout, Duration::from_millis(2000));

        let off = FaultPlan::from_conf(&JobConf::new(), &ObsHandle::disabled()).unwrap();
        assert!(!off.is_enabled());
    }

    #[test]
    fn injection_counters_reach_obs() {
        let obs = ObsHandle::enabled_with_stride(1);
        let conf = JobConf::new()
            .with(KEY_FT_ENABLED, "true")
            .with(KEY_FT_SEED, 1);
        let plan = FaultPlan::from_conf(&conf, &obs).unwrap();
        plan.note_injected(Site::OTask);
        plan.note_detected(Site::MpiSend);
        plan.note_retry(Site::OTask);
        plan.note_fallback("datampi", "mapreduce");
        plan.observe_backoff(Site::OTask, Duration::from_millis(12));
        let snap = obs.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
        };
        assert_eq!(get("ft.injected"), Some(1));
        assert_eq!(get("ft.detected"), Some(1));
        assert_eq!(get("ft.retries"), Some(1));
        assert_eq!(get("ft.fallbacks"), Some(1));
        assert!(snap.timers.iter().any(|(n, _, _)| n == "ft.backoff.ms"));
    }
}
