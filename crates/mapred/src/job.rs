//! The MapReduce job runner: map wave → materialize → pull shuffle →
//! reduce wave.

use crate::report::{MapTaskStats, MrJobReport, ReduceTaskStats};
use crate::sort::{merge_sorted_runs, SortBuffer};
use crate::store::MapOutputStore;
use crate::{CombinerRef, MapRedConfig};
use bytes::Bytes;
use hdm_common::error::{HdmError, Result};
use hdm_common::kv::{ComparatorRef, KvPair};
use hdm_common::partition::PartitionerRef;
use hdm_faults::{FaultPlan, Site};
use std::sync::Arc;
use std::time::Instant;

/// The context a map function emits through (Hadoop's
/// `OutputCollector.collect`).
pub struct MapContext {
    rank: usize,
    num_reducers: usize,
    buffer: SortBuffer,
    partitioner: PartitionerRef,
    stats: MapTaskStats,
    job_start: Instant,
    /// Injected-crash countdown for this attempt: `Some(0)` fails the
    /// next `collect`. Always `None` when fault injection is off.
    crash_countdown: Option<u64>,
    faults: FaultPlan,
    /// Cooperative cancellation: polled once per `collect` (one relaxed
    /// atomic load, same discipline as the disabled-faults path).
    cancel: hdm_common::CancelToken,
}

impl std::fmt::Debug for MapContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapContext")
            .field("rank", &self.rank)
            .field("records", &self.stats.collect.records)
            .finish()
    }
}

impl MapContext {
    /// Map task index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of reduce tasks.
    pub fn num_reducers(&self) -> usize {
        self.num_reducers
    }

    /// Emit one pair into the sort buffer.
    ///
    /// # Errors
    /// [`HdmError::MapRed`] if the partitioner routes the key outside
    /// `0..num_reducers`; [`HdmError::RankFailed`] when an injected
    /// crash fires; [`HdmError::Cancelled`] once the job's token fires.
    pub fn collect(&mut self, kv: KvPair) -> Result<()> {
        self.cancel.bail_if_cancelled()?;
        if let Some(countdown) = self.crash_countdown.as_mut() {
            if *countdown == 0 {
                self.faults.note_injected(Site::MapTask);
                return Err(HdmError::RankFailed(format!(
                    "M{}: injected crash mid-collect",
                    self.rank
                )));
            }
            *countdown -= 1;
        }
        let partition = self.partitioner.partition(&kv.key, self.num_reducers);
        if partition >= self.num_reducers {
            return Err(HdmError::MapRed(format!(
                "partitioner routed key to reducer {partition}, but only {} exist",
                self.num_reducers
            )));
        }
        self.stats
            .collect
            .record_kv(kv.wire_size() as u64, self.job_start);
        self.stats.bytes += kv.wire_size() as u64;
        self.buffer.collect(partition, kv);
        Ok(())
    }
}

/// The context a reduce function consumes: sorted `(key, values)` groups.
pub struct ReduceContext {
    rank: usize,
    attempt: u32,
    groups: std::vec::IntoIter<(Bytes, Vec<Bytes>)>,
}

impl std::fmt::Debug for ReduceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReduceContext")
            .field("rank", &self.rank)
            .finish()
    }
}

impl ReduceContext {
    /// Reduce task index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Which recovery attempt is running (0 for the first execution).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Next key group in comparator order.
    pub fn next_group(&mut self) -> Option<(Bytes, Vec<Bytes>)> {
        self.groups.next()
    }
}

/// Results and measurements of a completed MapReduce job.
#[derive(Debug)]
pub struct MrOutcome<RM, RR> {
    /// Map function return values, task order.
    pub map_results: Vec<RM>,
    /// Reduce function return values, task order.
    pub reduce_results: Vec<RR>,
    /// Everything measured.
    pub report: MrJobReport,
}

/// Type of user map functions: `(map_rank, context) -> RM`.
pub type MapFn<RM> = Arc<dyn Fn(usize, &mut MapContext) -> Result<RM> + Send + Sync>;
/// Type of user reduce functions: `(reduce_rank, context) -> RR`.
pub type ReduceFn<RR> = Arc<dyn Fn(usize, &mut ReduceContext) -> Result<RR> + Send + Sync>;

/// Run one MapReduce job with Hadoop's execution shape.
///
/// Map tasks run concurrently (bounded by `config.concurrency`), each
/// collecting into a sort buffer that spills and finally materializes
/// per-partition segments. Reduce tasks then pull their partition's
/// segment from every map, merge, group, and run the reduce function.
///
/// # Errors
/// Returns the first task error.
pub fn run_mapreduce<RM, RR>(
    config: &MapRedConfig,
    comparator: ComparatorRef,
    partitioner: PartitionerRef,
    map_fn: MapFn<RM>,
    reduce_fn: ReduceFn<RR>,
) -> Result<MrOutcome<RM, RR>>
where
    RM: Send + 'static,
    RR: Send + 'static,
{
    run_mapreduce_with_combiner(config, comparator, partitioner, map_fn, reduce_fn, None)
}

/// [`run_mapreduce`] with an optional map-side combiner.
///
/// # Errors
/// Returns the first task error.
pub fn run_mapreduce_with_combiner<RM, RR>(
    config: &MapRedConfig,
    comparator: ComparatorRef,
    partitioner: PartitionerRef,
    map_fn: MapFn<RM>,
    reduce_fn: ReduceFn<RR>,
    combiner: Option<CombinerRef>,
) -> Result<MrOutcome<RM, RR>>
where
    RM: Send + 'static,
    RR: Send + 'static,
{
    if config.map_tasks == 0 || config.reduce_tasks == 0 {
        return Err(HdmError::Config(format!(
            "mapreduce job needs at least one task on each side (m={}, r={})",
            config.map_tasks, config.reduce_tasks
        )));
    }
    let job_start = Instant::now();
    let store = Arc::new(MapOutputStore::new());

    // ---- Map wave -------------------------------------------------------
    let map_outputs = run_wave(config.map_tasks, config.concurrency, {
        let config = config.clone();
        let comparator = Arc::clone(&comparator);
        let partitioner = Arc::clone(&partitioner);
        let store = Arc::clone(&store);
        let map_fn = Arc::clone(&map_fn);
        let combiner = combiner.clone();
        move |rank| {
            let task_start = Instant::now();
            let track = format!("M{rank}");
            let _task_span = config.obs.span(&track, "task", "map-task");
            let faults = &config.faults;
            let max_attempts = if faults.is_enabled() {
                config.recovery.max_attempts.max(1)
            } else {
                1
            };
            let mut attempt = 0u32;
            // Attempt supervisor: a failed attempt is re-executed with a
            // fresh sort buffer (its spills are discarded with it), so a
            // replayed split is idempotent — nothing is published until
            // the final attempt finishes.
            let (user, ctx) = loop {
                let _attempt_span =
                    (attempt > 0).then(|| config.obs.span(&track, "recovery", "map-task-retry"));
                if let Some(stall) = faults.stall(Site::MapTask, rank, attempt) {
                    faults.note_injected(Site::MapTask);
                    std::thread::sleep(stall);
                }
                let mut ctx = MapContext {
                    rank,
                    num_reducers: config.reduce_tasks,
                    buffer: SortBuffer::new(
                        config.sort_buffer_bytes,
                        Arc::clone(&comparator),
                        combiner.clone(),
                    ),
                    partitioner: Arc::clone(&partitioner),
                    stats: MapTaskStats::new(rank),
                    job_start,
                    crash_countdown: faults.crash_after(Site::MapTask, rank, attempt),
                    faults: faults.clone(),
                    cancel: config.cancel.clone(),
                };
                let user = map_fn(rank, &mut ctx);
                // Cancellation is terminal: never burn recovery attempts
                // (or backoff sleeps) replaying a cancelled task.
                let retryable = user.as_ref().err().is_some_and(|e| !e.is_cancelled());
                if retryable && attempt + 1 < max_attempts {
                    faults.note_detected(Site::MapTask);
                    faults.note_retry(Site::MapTask);
                    let delay = config.recovery.backoff_delay_jittered(attempt, rank as u64);
                    attempt += 1;
                    std::thread::sleep(delay);
                    faults.observe_backoff(Site::MapTask, delay);
                    continue;
                }
                break (user, ctx);
            };
            let mut stats = ctx.stats;
            stats.spill.spills = ctx.buffer.spill_count() as u64;
            stats.spill.spill_bytes = ctx.buffer.spill_bytes();
            if config.obs.is_enabled() {
                let label = format!("rank={rank}");
                config
                    .obs
                    .counter("map.spills", &label)
                    .add(stats.spill.spills);
                config
                    .obs
                    .counter("map.spill.bytes", &label)
                    .add(stats.spill.spill_bytes);
            }
            // Final sort/merge of spill runs into materialized segments —
            // Hadoop's map-side merge, visible as its own span.
            let segments = {
                let _sort_span = config.obs.span(&track, "phase", "sort-merge");
                ctx.buffer.finish(config.reduce_tasks)
            };
            store.publish(rank, segments);
            stats.elapsed = task_start.elapsed();
            (user, stats)
        }
    });

    let mut map_results = Vec::with_capacity(config.map_tasks);
    let mut map_stats = Vec::with_capacity(config.map_tasks);
    let mut first_err: Option<HdmError> = None;
    for (res, stats) in map_outputs {
        map_stats.push(stats);
        match res {
            Ok(v) => map_results.push(v),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    // Wave boundary safe point: a token fired late in the map wave must
    // not launch the reduce wave at all.
    config.cancel.bail_if_cancelled()?;

    // ---- Reduce wave ----------------------------------------------------
    let maps = config.map_tasks;
    let reduce_outputs = run_wave(config.reduce_tasks, config.concurrency, {
        let comparator = Arc::clone(&comparator);
        let store = Arc::clone(&store);
        let reduce_fn = Arc::clone(&reduce_fn);
        let obs = config.obs.clone();
        let faults = config.faults.clone();
        let recovery = config.recovery.clone();
        move |rank| {
            let task_start = Instant::now();
            let track = format!("R{rank}");
            let _task_span = obs.span(&track, "task", "reduce-task");
            let mut stats = ReduceTaskStats::new(rank, maps);
            // Copier phase: pull this partition's segment from every map.
            let copy_span = obs.span(&track, "phase", "copy");
            let mut runs: Vec<Vec<KvPair>> = Vec::with_capacity(maps);
            let mut failed: Option<HdmError> = None;
            for m in 0..maps {
                match store.fetch(m, rank) {
                    Ok(seg) => {
                        let bytes: u64 = seg.iter().map(|kv| kv.wire_size() as u64).sum();
                        if let Some(slot) = stats.shuffled_from.get_mut(m) {
                            *slot = bytes;
                        }
                        stats.records += seg.len() as u64;
                        runs.push(seg);
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            drop(copy_span);
            if obs.is_enabled() {
                obs.counter("reduce.shuffled.bytes", &format!("rank={rank}"))
                    .add(stats.shuffled_bytes());
            }
            if let Some(e) = failed {
                return (Err(e), stats);
            }
            // Merge + group.
            let merge_span = obs.span(&track, "phase", "merge");
            let merged = merge_sorted_runs(runs, &comparator);
            let mut groups: Vec<(Bytes, Vec<Bytes>)> = Vec::new();
            for kv in merged {
                match groups.last_mut() {
                    Some((key, values))
                        if comparator.compare(key, &kv.key) == std::cmp::Ordering::Equal =>
                    {
                        values.push(kv.value);
                    }
                    _ => groups.push((kv.key, vec![kv.value])),
                }
            }
            stats.groups = groups.len() as u64;
            drop(merge_span);
            // Attempt supervisor: the copy phase is idempotent (segments
            // stay in the map-output store), so a failed reduce attempt
            // replays over the already-merged groups.
            let max_attempts = if faults.is_enabled() {
                recovery.max_attempts.max(1)
            } else {
                1
            };
            let mut attempt = 0u32;
            let user = loop {
                let _attempt_span =
                    (attempt > 0).then(|| obs.span(&track, "recovery", "reduce-task-retry"));
                if let Some(stall) = faults.stall(Site::ReduceTask, rank, attempt) {
                    faults.note_injected(Site::ReduceTask);
                    std::thread::sleep(stall);
                }
                let more_attempts = attempt + 1 < max_attempts;
                // Clone the merged input only while a later attempt could
                // still need it (Bytes clones are refcounted views).
                let input = if more_attempts {
                    groups.clone()
                } else {
                    std::mem::take(&mut groups)
                };
                let res = if faults
                    .crash_after(Site::ReduceTask, rank, attempt)
                    .is_some()
                {
                    faults.note_injected(Site::ReduceTask);
                    Err(HdmError::RankFailed(format!(
                        "R{rank}: injected crash before reduce"
                    )))
                } else {
                    let mut ctx = ReduceContext {
                        rank,
                        attempt,
                        groups: input.into_iter(),
                    };
                    reduce_fn(rank, &mut ctx)
                };
                match res {
                    Ok(v) => break Ok(v),
                    Err(e) => {
                        // A cancelled attempt is terminal, not a fault.
                        if !more_attempts || e.is_cancelled() {
                            break Err(e);
                        }
                        faults.note_detected(Site::ReduceTask);
                        faults.note_retry(Site::ReduceTask);
                        let delay =
                            recovery.backoff_delay_jittered(attempt, (rank as u64) | (1 << 32));
                        attempt += 1;
                        std::thread::sleep(delay);
                        faults.observe_backoff(Site::ReduceTask, delay);
                    }
                }
            };
            stats.elapsed = task_start.elapsed();
            (user, stats)
        }
    });

    let mut reduce_results = Vec::with_capacity(config.reduce_tasks);
    let mut reduce_stats = Vec::with_capacity(config.reduce_tasks);
    for (res, stats) in reduce_outputs {
        reduce_stats.push(stats);
        match res {
            Ok(v) => reduce_results.push(v),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    Ok(MrOutcome {
        map_results,
        reduce_results,
        report: MrJobReport {
            map_tasks: map_stats,
            reduce_tasks: reduce_stats,
            materialized_bytes: store.total_bytes(),
            elapsed: job_start.elapsed(),
        },
    })
}

/// Run `n` tasks on at most `slots` threads; outputs in task order.
fn run_wave<T, F>(n: usize, slots: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    let slots = slots.max(1);
    let task = &task;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_used = slots.min(n);
    // Collected as (task index, result); sorted back into task order below.
    // A poisoned collector only means some other worker panicked mid-push;
    // the pushed pairs are still intact, so recover the guard.
    let collected = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..slots_used {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let result = task(i);
                collected
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((i, result));
            });
        }
    });
    let mut out = collected
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::kv::BytesComparator;
    use hdm_common::partition::HashPartitioner;

    fn base_config(m: usize, r: usize) -> MapRedConfig {
        MapRedConfig {
            map_tasks: m,
            reduce_tasks: r,
            sort_buffer_bytes: 256, // force spills
            concurrency: 4,
            ..Default::default()
        }
    }

    #[test]
    fn word_count_end_to_end() {
        let config = base_config(3, 2);
        let outcome = run_mapreduce(
            &config,
            Arc::new(BytesComparator),
            Arc::new(HashPartitioner),
            Arc::new(|_rank, ctx: &mut MapContext| {
                for i in 0..200u32 {
                    ctx.collect(KvPair::new(format!("w{}", i % 13).into_bytes(), vec![1]))?;
                }
                Ok(())
            }),
            Arc::new(|_rank, ctx: &mut ReduceContext| {
                let mut n = 0u64;
                let mut prev: Option<Bytes> = None;
                while let Some((key, values)) = ctx.next_group() {
                    if let Some(p) = &prev {
                        assert!(p.as_ref() < key.as_ref());
                    }
                    prev = Some(key);
                    n += values.len() as u64;
                }
                Ok(n)
            }),
        )
        .unwrap();
        assert_eq!(outcome.reduce_results.iter().sum::<u64>(), 600);
        assert_eq!(outcome.report.total_map_records(), 600);
        assert_eq!(outcome.report.total_reduce_records(), 600);
        assert!(outcome.report.map_tasks.iter().any(|t| t.spill.spills > 0));
        assert_eq!(
            outcome.report.total_shuffle_bytes(),
            outcome.report.materialized_bytes
        );
    }

    #[test]
    fn groups_complete_across_maps() {
        let config = base_config(4, 3);
        let outcome = run_mapreduce(
            &config,
            Arc::new(BytesComparator),
            Arc::new(HashPartitioner),
            Arc::new(|rank, ctx: &mut MapContext| {
                for k in 0..30u8 {
                    ctx.collect(KvPair::new(vec![k], vec![rank as u8]))?;
                }
                Ok(())
            }),
            Arc::new(|_rank, ctx: &mut ReduceContext| {
                let mut complete = 0;
                while let Some((_key, values)) = ctx.next_group() {
                    let mut senders: Vec<u8> = values.iter().map(|v| v[0]).collect();
                    senders.sort_unstable();
                    if senders == vec![0, 1, 2, 3] {
                        complete += 1;
                    }
                }
                Ok(complete)
            }),
        )
        .unwrap();
        assert_eq!(outcome.reduce_results.iter().sum::<u64>(), 30);
    }

    #[test]
    fn map_error_propagates() {
        let config = base_config(2, 1);
        let err = run_mapreduce::<(), ()>(
            &config,
            Arc::new(BytesComparator),
            Arc::new(HashPartitioner),
            Arc::new(|rank, _ctx: &mut MapContext| {
                if rank == 1 {
                    Err(HdmError::Other("map blew up".into()))
                } else {
                    Ok(())
                }
            }),
            Arc::new(|_rank, _ctx: &mut ReduceContext| Ok(())),
        )
        .unwrap_err();
        assert!(err.message().contains("map blew up"));
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let run = |combine: Option<CombinerRef>| {
            let config = base_config(2, 2);
            run_mapreduce_with_combiner(
                &config,
                Arc::new(BytesComparator),
                Arc::new(HashPartitioner),
                Arc::new(|_rank, ctx: &mut MapContext| {
                    for _ in 0..500 {
                        for k in 0..4u8 {
                            ctx.collect(KvPair::new(vec![k], vec![1]))?;
                        }
                    }
                    Ok(())
                }),
                Arc::new(|_rank, ctx: &mut ReduceContext| {
                    let mut total = 0u64;
                    while let Some((_k, vs)) = ctx.next_group() {
                        total += vs.iter().map(|v| v[0] as u64).sum::<u64>();
                    }
                    Ok(total)
                }),
                combine,
            )
            .unwrap()
        };
        let plain = run(None);
        let combine: CombinerRef = Arc::new(|group: Vec<KvPair>| {
            let sum: u64 = group.iter().map(|kv| kv.value[0] as u64).sum();
            vec![KvPair::new(group[0].key.to_vec(), vec![sum.min(255) as u8])]
        });
        let combined = run(Some(combine));
        // Same answer (sums under 255 per combined run), far fewer bytes.
        assert_eq!(plain.reduce_results.iter().sum::<u64>(), 4000);
        assert_eq!(combined.reduce_results.iter().sum::<u64>(), 4000);
        assert!(
            combined.report.total_shuffle_bytes() * 4 < plain.report.total_shuffle_bytes(),
            "combiner should slash shuffle volume: {} vs {}",
            combined.report.total_shuffle_bytes(),
            plain.report.total_shuffle_bytes()
        );
    }

    fn word_count_total(config: &MapRedConfig) -> Result<u64> {
        let outcome = run_mapreduce(
            config,
            Arc::new(BytesComparator),
            Arc::new(HashPartitioner),
            Arc::new(|_rank, ctx: &mut MapContext| {
                for i in 0..200u32 {
                    ctx.collect(KvPair::new(format!("w{}", i % 13).into_bytes(), vec![1]))?;
                }
                Ok(())
            }),
            Arc::new(|_rank, ctx: &mut ReduceContext| {
                let mut n = 0u64;
                while let Some((_key, values)) = ctx.next_group() {
                    n += values.len() as u64;
                }
                Ok(n)
            }),
        )?;
        Ok(outcome.reduce_results.iter().sum())
    }

    /// A seed whose plan crashes at least one of the first three map
    /// attempts within the 200 records each map collects.
    fn map_crashing_seed() -> u64 {
        (0..1024u64)
            .find(|&s| {
                let p = hdm_faults::FaultPlan::with_seed(s);
                (0..3).any(|r| matches!(p.crash_after(Site::MapTask, r, 0), Some(c) if c < 200))
            })
            .expect("no map-crashing seed in 1024 candidates")
    }

    #[test]
    fn injected_map_crash_recovers_with_identical_results() {
        let obs = hdm_obs::ObsHandle::enabled_with_stride(1);
        let conf = hdm_common::conf::JobConf::new()
            .with(hdm_common::conf::KEY_FT_ENABLED, "true")
            .with(hdm_common::conf::KEY_FT_SEED, map_crashing_seed() as i64);
        let faults = FaultPlan::from_conf(&conf, &obs).unwrap();
        let config = MapRedConfig {
            faults,
            ..base_config(3, 2)
        };
        assert_eq!(word_count_total(&config).unwrap(), 600);
        let snap = obs.snapshot();
        let count = |name: &str| {
            snap.counters
                .iter()
                .filter(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
                .sum::<u64>()
        };
        assert!(count("ft.injected") >= 1, "crash was never injected");
        assert!(count("ft.retries") >= 1, "no task retried");
    }

    #[test]
    fn exhausted_map_attempts_surface_as_rank_failure() {
        let config = MapRedConfig {
            faults: hdm_faults::FaultPlan::with_seed(map_crashing_seed()),
            recovery: hdm_faults::RecoveryPolicy {
                max_attempts: 1,
                ..hdm_faults::RecoveryPolicy::default()
            },
            ..base_config(3, 2)
        };
        let err = word_count_total(&config).unwrap_err();
        assert_eq!(err.subsystem(), "rank-failed");
        assert!(err.message().contains("injected crash"));
    }

    #[test]
    fn zero_tasks_rejected() {
        let config = MapRedConfig {
            map_tasks: 0,
            ..Default::default()
        };
        assert!(run_mapreduce::<(), ()>(
            &config,
            Arc::new(BytesComparator),
            Arc::new(HashPartitioner),
            Arc::new(|_, _| Ok(())),
            Arc::new(|_, _| Ok(())),
        )
        .is_err());
    }

    #[test]
    fn wave_respects_task_order_in_output() {
        let out = run_wave(10, 3, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_reducer_gets_everything() {
        let config = MapRedConfig {
            map_tasks: 3,
            reduce_tasks: 1,
            ..Default::default()
        };
        let outcome = run_mapreduce(
            &config,
            Arc::new(BytesComparator),
            Arc::new(HashPartitioner),
            Arc::new(|rank, ctx: &mut MapContext| {
                ctx.collect(KvPair::new(vec![rank as u8], vec![]))?;
                Ok(())
            }),
            Arc::new(|_rank, ctx: &mut ReduceContext| {
                let mut n = 0;
                while ctx.next_group().is_some() {
                    n += 1;
                }
                Ok(n)
            }),
        )
        .unwrap();
        assert_eq!(outcome.reduce_results, vec![3]);
    }
}
