#![warn(missing_docs)]

//! # hdm-mapred
//!
//! A Hadoop-1.x-like MapReduce engine — the paper's **baseline**.
//!
//! The paper compares Hive on DataMPI against Hive on Hadoop 1.2.1. For
//! the comparison to mean anything, the baseline must execute the same
//! physical plans over the same data, with Hadoop's data-movement
//! architecture:
//!
//! * **Map side** ([`sort`]): map output is collected into a bounded
//!   sort buffer (`io.sort.mb` analogue); when the buffer fills it is
//!   sorted by `(partition, key)` and *spilled*; at task end the spills
//!   are merged into one sorted segment per reduce partition, which is
//!   **fully materialized** (Hadoop writes map output to local disk —
//!   unlike DataMPI's eager in-memory push, and the root of the paper's
//!   Map-Shuffle gap).
//! * **Shuffle** ([`store`]): materialized segments live in a
//!   [`store::MapOutputStore`]; reducers *pull* their partition's segment
//!   from every completed map (Hadoop's copier threads). The per
//!   (map, reduce) segment sizes are recorded — they are what the
//!   discrete-event model charges the pull-shuffle with.
//! * **Reduce side**: pulled segments are k-way merged and grouped; the
//!   user reduce function sees `(key, values)` groups exactly like the
//!   DataMPI A function, so the Hive layer is engine-agnostic.
//!
//! Functional execution runs map tasks concurrently on a bounded pool
//! (the paper's 4 slots/node × 7 workers = 28 slots), then reduce tasks.
//! The startup, heartbeat-scheduling and copy-phase *timing* behaviours
//! are modelled by `hdm-cluster`, driven by the [`report::MrJobReport`]
//! this engine measures.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use hdm_mapred::{run_mapreduce, MapRedConfig};
//! use hdm_common::kv::{KvPair, BytesComparator};
//! use hdm_common::partition::HashPartitioner;
//!
//! let config = MapRedConfig { map_tasks: 3, reduce_tasks: 2, ..Default::default() };
//! let outcome = run_mapreduce(
//!     &config,
//!     Arc::new(BytesComparator),
//!     Arc::new(HashPartitioner),
//!     Arc::new(|_map_rank, ctx| {
//!         for i in 0..50u8 {
//!             ctx.collect(KvPair::new(vec![i % 5], vec![1]))?;
//!         }
//!         Ok(())
//!     }),
//!     Arc::new(|_reduce_rank, ctx| {
//!         let mut n = 0u64;
//!         while let Some((_key, values)) = ctx.next_group() {
//!             n += values.len() as u64;
//!         }
//!         Ok(n)
//!     }),
//! ).unwrap();
//! assert_eq!(outcome.reduce_results.iter().sum::<u64>(), 150);
//! ```

pub mod report;
pub mod sort;
pub mod store;

mod job;

pub use job::{run_mapreduce, run_mapreduce_with_combiner, MapContext, MrOutcome, ReduceContext};
pub use report::{MapTaskStats, MrJobReport, ReduceTaskStats};

/// Optional combiner applied to each sorted spill run before it is
/// written (Hadoop's `Combiner`, Hive's `hive.map.aggr` analogue at the
/// engine level). Input pairs arrive sorted by key.
pub type CombinerRef = std::sync::Arc<
    dyn Fn(Vec<hdm_common::kv::KvPair>) -> Vec<hdm_common::kv::KvPair> + Send + Sync,
>;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct MapRedConfig {
    /// Number of map tasks (normally = number of input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Map-side sort buffer size in bytes (`io.sort.mb` analogue).
    pub sort_buffer_bytes: usize,
    /// Maximum concurrently-running tasks (cluster slot count).
    pub concurrency: usize,
    /// Observability sink: per-task spans plus sort/spill/merge counters
    /// flow here. Defaults to a disabled handle whose per-site cost is
    /// one relaxed atomic load.
    pub obs: hdm_obs::ObsHandle,
    /// Fault-injection plan (`hive.ft.*`); disabled by default. When
    /// enabled, map and reduce attempts can be crashed or stalled and are
    /// re-executed under [`Self::recovery`] — Hadoop's own attempt model,
    /// which this engine reproduces natively.
    pub faults: hdm_faults::FaultPlan,
    /// Retry/backoff policy for failed task attempts.
    pub recovery: hdm_faults::RecoveryPolicy,
    /// Cooperative cancellation token. Task supervisors poll it between
    /// waves and attempts (one relaxed load); a fired token makes every
    /// in-flight attempt bail with a terminal, non-retryable
    /// `Cancelled` error. Defaults to a token that never fires.
    pub cancel: hdm_common::CancelToken,
}

impl Default for MapRedConfig {
    fn default() -> MapRedConfig {
        MapRedConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            sort_buffer_bytes: 4 * 1024 * 1024,
            // The paper's testbed: 7 worker nodes × 4 slots.
            concurrency: 28,
            obs: hdm_obs::ObsHandle::default(),
            faults: hdm_faults::FaultPlan::disabled(),
            recovery: hdm_faults::RecoveryPolicy::default(),
            cancel: hdm_common::CancelToken::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_concurrency_matches_paper_slots() {
        assert_eq!(MapRedConfig::default().concurrency, 28);
    }
}
