//! Measurements of one MapReduce job (input to the timing model).

use hdm_common::stats::Histogram;
use std::time::Duration;

/// Bucket width for KV-size histograms (matches the DataMPI engine).
pub const KV_HIST_BUCKET: u64 = 2;

/// Statistics for one map task.
#[derive(Debug, Clone)]
pub struct MapTaskStats {
    /// Map task index.
    pub rank: usize,
    /// Pairs collected.
    pub records: u64,
    /// Serialized bytes collected.
    pub bytes: u64,
    /// Spill count (sort buffer overflows).
    pub spills: u64,
    /// Bytes written to spill runs (local-disk traffic).
    pub spill_bytes: u64,
    /// Sampled collect-time sequence `(offset, cumulative records)`.
    pub collect_events: Vec<(Duration, u64)>,
    /// KV wire-size distribution.
    pub kv_sizes: Histogram,
    /// Wall time of the task.
    pub elapsed: Duration,
}

impl MapTaskStats {
    pub(crate) fn new(rank: usize) -> MapTaskStats {
        MapTaskStats {
            rank,
            records: 0,
            bytes: 0,
            spills: 0,
            spill_bytes: 0,
            collect_events: Vec::new(),
            kv_sizes: Histogram::new(KV_HIST_BUCKET),
            elapsed: Duration::ZERO,
        }
    }
}

/// Statistics for one reduce task.
#[derive(Debug, Clone)]
pub struct ReduceTaskStats {
    /// Reduce task index.
    pub rank: usize,
    /// Bytes pulled from each map (`shuffled_from[map]`).
    pub shuffled_from: Vec<u64>,
    /// Pairs received after the shuffle.
    pub records: u64,
    /// Key groups fed to the reduce function.
    pub groups: u64,
    /// Wall time of the task.
    pub elapsed: Duration,
}

impl ReduceTaskStats {
    pub(crate) fn new(rank: usize, maps: usize) -> ReduceTaskStats {
        ReduceTaskStats {
            rank,
            shuffled_from: vec![0; maps],
            records: 0,
            groups: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Total bytes this reducer pulled.
    pub fn shuffled_bytes(&self) -> u64 {
        self.shuffled_from.iter().sum()
    }
}

/// Everything measured during one MapReduce job.
#[derive(Debug, Clone)]
pub struct MrJobReport {
    /// Per-map stats, task order.
    pub map_tasks: Vec<MapTaskStats>,
    /// Per-reduce stats, task order.
    pub reduce_tasks: Vec<ReduceTaskStats>,
    /// Total bytes materialized in the map-output store.
    pub materialized_bytes: u64,
    /// Wall time of the whole job.
    pub elapsed: Duration,
}

impl MrJobReport {
    /// Total records collected by maps.
    pub fn total_map_records(&self) -> u64 {
        self.map_tasks.iter().map(|t| t.records).sum()
    }

    /// Total records received by reducers.
    pub fn total_reduce_records(&self) -> u64 {
        self.reduce_tasks.iter().map(|t| t.records).sum()
    }

    /// Total bytes moved by the pull shuffle.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.reduce_tasks.iter().map(|t| t.shuffled_bytes()).sum()
    }

    /// Merged KV-size histogram across maps.
    pub fn kv_size_histogram(&self) -> Histogram {
        let mut h = Histogram::new(KV_HIST_BUCKET);
        for t in &self.map_tasks {
            h.merge(&t.kv_sizes);
        }
        h
    }

    /// Records imbalance across reducers (`max / max(1, min)`).
    pub fn reduce_skew_factor(&self) -> f64 {
        let max = self
            .reduce_tasks
            .iter()
            .map(|t| t.records)
            .max()
            .unwrap_or(0);
        let min = self
            .reduce_tasks
            .iter()
            .map(|t| t.records)
            .min()
            .unwrap_or(0);
        max as f64 / min.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_skew() {
        let mut m = MapTaskStats::new(0);
        m.records = 7;
        m.bytes = 70;
        m.kv_sizes.record(10);
        let mut r0 = ReduceTaskStats::new(0, 1);
        r0.records = 6;
        r0.shuffled_from[0] = 60;
        let mut r1 = ReduceTaskStats::new(1, 1);
        r1.records = 1;
        r1.shuffled_from[0] = 10;
        let report = MrJobReport {
            map_tasks: vec![m],
            reduce_tasks: vec![r0, r1],
            materialized_bytes: 70,
            elapsed: Duration::from_secs(1),
        };
        assert_eq!(report.total_map_records(), 7);
        assert_eq!(report.total_reduce_records(), 7);
        assert_eq!(report.total_shuffle_bytes(), 70);
        assert_eq!(report.reduce_skew_factor(), 6.0);
        assert_eq!(report.kv_size_histogram().count(), 1);
    }
}
