//! Measurements of one MapReduce job (input to the timing model).
//!
//! Collect-side profiling and spill accounting use the shared `hdm-obs`
//! types ([`CollectProfile`], [`SpillStats`]) — one definition across
//! this engine and `hdm-datampi`'s report.

use hdm_common::error::Result;
use hdm_common::stats::Histogram;
use std::time::Duration;

pub use hdm_obs::{CollectProfile, SpillStats, KV_HIST_BUCKET};

/// Statistics for one map task.
#[derive(Debug, Clone)]
pub struct MapTaskStats {
    /// Map task index.
    pub rank: usize,
    /// Collect-side profile: pairs collected, sampled collect-time
    /// sequence, KV wire-size distribution.
    pub collect: CollectProfile,
    /// Serialized bytes collected.
    pub bytes: u64,
    /// Sort-buffer spill accounting (local-disk traffic).
    pub spill: SpillStats,
    /// Wall time of the task.
    pub elapsed: Duration,
}

impl MapTaskStats {
    pub(crate) fn new(rank: usize) -> MapTaskStats {
        MapTaskStats {
            rank,
            collect: CollectProfile::new(),
            bytes: 0,
            spill: SpillStats::default(),
            elapsed: Duration::ZERO,
        }
    }
}

/// Statistics for one reduce task.
#[derive(Debug, Clone)]
pub struct ReduceTaskStats {
    /// Reduce task index.
    pub rank: usize,
    /// Bytes pulled from each map (`shuffled_from[map]`).
    pub shuffled_from: Vec<u64>,
    /// Pairs received after the shuffle.
    pub records: u64,
    /// Key groups fed to the reduce function.
    pub groups: u64,
    /// Wall time of the task.
    pub elapsed: Duration,
}

impl ReduceTaskStats {
    pub(crate) fn new(rank: usize, maps: usize) -> ReduceTaskStats {
        ReduceTaskStats {
            rank,
            shuffled_from: vec![0; maps],
            records: 0,
            groups: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Total bytes this reducer pulled.
    pub fn shuffled_bytes(&self) -> u64 {
        self.shuffled_from.iter().sum()
    }
}

/// Everything measured during one MapReduce job.
#[derive(Debug, Clone)]
pub struct MrJobReport {
    /// Per-map stats, task order.
    pub map_tasks: Vec<MapTaskStats>,
    /// Per-reduce stats, task order.
    pub reduce_tasks: Vec<ReduceTaskStats>,
    /// Total bytes materialized in the map-output store.
    pub materialized_bytes: u64,
    /// Wall time of the whole job.
    pub elapsed: Duration,
}

impl MrJobReport {
    /// Total records collected by maps.
    pub fn total_map_records(&self) -> u64 {
        self.map_tasks.iter().map(|t| t.collect.records).sum()
    }

    /// Total records received by reducers.
    pub fn total_reduce_records(&self) -> u64 {
        self.reduce_tasks.iter().map(|t| t.records).sum()
    }

    /// Total bytes moved by the pull shuffle.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.reduce_tasks.iter().map(|t| t.shuffled_bytes()).sum()
    }

    /// Merged KV-size histogram across maps.
    ///
    /// # Errors
    /// [`hdm_common::error::HdmError::Config`] on bucket-width mismatch
    /// (cannot happen for reports produced by `run_mapreduce`).
    pub fn kv_size_histogram(&self) -> Result<Histogram> {
        let mut h = Histogram::with_width(KV_HIST_BUCKET);
        for t in &self.map_tasks {
            h.merge(&t.collect.kv_sizes)?;
        }
        Ok(h)
    }

    /// Records imbalance across reducers (`max / max(1, min)`).
    pub fn reduce_skew_factor(&self) -> f64 {
        let max = self
            .reduce_tasks
            .iter()
            .map(|t| t.records)
            .max()
            .unwrap_or(0);
        let min = self
            .reduce_tasks
            .iter()
            .map(|t| t.records)
            .min()
            .unwrap_or(0);
        max as f64 / min.max(1) as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_skew() {
        let mut m = MapTaskStats::new(0);
        m.collect.records = 7;
        m.bytes = 70;
        m.collect.kv_sizes.record(10);
        let mut r0 = ReduceTaskStats::new(0, 1);
        r0.records = 6;
        r0.shuffled_from[0] = 60;
        let mut r1 = ReduceTaskStats::new(1, 1);
        r1.records = 1;
        r1.shuffled_from[0] = 10;
        let report = MrJobReport {
            map_tasks: vec![m],
            reduce_tasks: vec![r0, r1],
            materialized_bytes: 70,
            elapsed: Duration::from_secs(1),
        };
        assert_eq!(report.total_map_records(), 7);
        assert_eq!(report.total_reduce_records(), 7);
        assert_eq!(report.total_shuffle_bytes(), 70);
        assert_eq!(report.reduce_skew_factor(), 6.0);
        assert_eq!(report.kv_size_histogram().unwrap().count(), 1);
    }
}
