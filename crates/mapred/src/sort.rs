//! The map-side sort buffer: collect, sort, spill, merge.

use crate::CombinerRef;
use hdm_common::kv::{ComparatorRef, KvPair};

/// One spill run: pairs sorted by `(partition, key)`.
#[derive(Debug, Clone)]
pub struct SpillRun {
    /// `(partition, pair)` entries in sorted order.
    pub entries: Vec<(usize, KvPair)>,
    /// Serialized size of the run (local-disk write volume).
    pub bytes: u64,
}

/// The in-memory collect buffer of one map task.
pub struct SortBuffer {
    entries: Vec<(usize, KvPair)>,
    bytes: usize,
    capacity: usize,
    comparator: ComparatorRef,
    combiner: Option<CombinerRef>,
    spills: Vec<SpillRun>,
}

impl std::fmt::Debug for SortBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortBuffer")
            .field("buffered", &self.entries.len())
            .field("bytes", &self.bytes)
            .field("spills", &self.spills.len())
            .finish()
    }
}

impl SortBuffer {
    /// A buffer spilling at `capacity` bytes.
    pub fn new(
        capacity: usize,
        comparator: ComparatorRef,
        combiner: Option<CombinerRef>,
    ) -> SortBuffer {
        SortBuffer {
            entries: Vec::new(),
            bytes: 0,
            capacity: capacity.max(1),
            comparator,
            combiner,
            spills: Vec::new(),
        }
    }

    /// Add one pair destined for `partition`; spills when full.
    pub fn collect(&mut self, partition: usize, kv: KvPair) {
        self.bytes += kv.wire_size();
        self.entries.push((partition, kv));
        if self.bytes >= self.capacity {
            self.spill();
        }
    }

    /// Number of spills so far.
    pub fn spill_count(&self) -> usize {
        self.spills.len()
    }

    /// Bytes written across all spill runs so far.
    pub fn spill_bytes(&self) -> u64 {
        self.spills.iter().map(|s| s.bytes).sum()
    }

    fn spill(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        let mut run = std::mem::take(&mut self.entries);
        self.bytes = 0;
        let cmp = &self.comparator;
        run.sort_by(|(pa, a), (pb, b)| pa.cmp(pb).then_with(|| cmp.compare(&a.key, &b.key)));
        let run = match &self.combiner {
            Some(combine) => combine_sorted(run, combine, cmp),
            None => run,
        };
        let bytes = run.iter().map(|(_, kv)| kv.wire_size() as u64).sum();
        self.spills.push(SpillRun {
            entries: run,
            bytes,
        });
    }

    /// Finish the task: final spill, then merge all runs into one sorted
    /// segment per partition. Returns `segments[partition]`. Pairs
    /// collected for partitions `>= num_partitions` (a broken partitioner
    /// — [`crate::job::MapContext::collect`] rejects them upstream) are
    /// dropped rather than panicking.
    pub fn finish(mut self, num_partitions: usize) -> Vec<Vec<KvPair>> {
        self.spill();
        let comparator = std::sync::Arc::clone(&self.comparator);
        let spills = std::mem::take(&mut self.spills);
        // Each run is sorted by (partition, key); per-partition slices are
        // therefore individually sorted — merge them partition by partition.
        let mut per_part_runs: std::collections::HashMap<usize, Vec<Vec<KvPair>>> =
            std::collections::HashMap::new();
        for run in spills {
            let mut current: Vec<KvPair> = Vec::new();
            let mut current_part: Option<usize> = None;
            for (p, kv) in run.entries {
                match current_part {
                    Some(cp) if cp == p => current.push(kv),
                    Some(cp) => {
                        per_part_runs
                            .entry(cp)
                            .or_default()
                            .push(std::mem::take(&mut current));
                        current.push(kv);
                        current_part = Some(p);
                    }
                    None => {
                        current.push(kv);
                        current_part = Some(p);
                    }
                }
            }
            if let Some(cp) = current_part {
                per_part_runs.entry(cp).or_default().push(current);
            }
        }
        (0..num_partitions)
            .map(|p| merge_sorted_runs(per_part_runs.remove(&p).unwrap_or_default(), &comparator))
            .collect()
    }
}

/// Apply a combiner to a `(partition, key)`-sorted run, combining each
/// per-partition key group.
fn combine_sorted(
    run: Vec<(usize, KvPair)>,
    combine: &CombinerRef,
    comparator: &ComparatorRef,
) -> Vec<(usize, KvPair)> {
    let mut out: Vec<(usize, KvPair)> = Vec::with_capacity(run.len());
    let mut group: Vec<KvPair> = Vec::new();
    let mut group_part: Option<usize> = None;
    for (p, kv) in run {
        let same = match (&group_part, group.last()) {
            (Some(gp), Some(last)) => {
                *gp == p && comparator.compare(&last.key, &kv.key) == std::cmp::Ordering::Equal
            }
            _ => false,
        };
        if same {
            group.push(kv);
        } else {
            if let Some(gp) = group_part {
                for c in combine(std::mem::take(&mut group)) {
                    out.push((gp, c));
                }
            }
            group.push(kv);
            group_part = Some(p);
        }
    }
    if let Some(gp) = group_part {
        if !group.is_empty() {
            for c in combine(group) {
                out.push((gp, c));
            }
        }
    }
    out
}

/// K-way merge of sorted runs by key comparator (selection merge: run
/// counts are small).
pub fn merge_sorted_runs(runs: Vec<Vec<KvPair>>, comparator: &ComparatorRef) -> Vec<KvPair> {
    let total: usize = runs.iter().map(Vec::len).sum();
    // Reverse once so a run's head is its `last()`: heads compare in place
    // and `pop` consumes the winner — no per-element key clone.
    let mut rev: Vec<Vec<KvPair>> = runs
        .into_iter()
        .map(|mut r| {
            r.reverse();
            r
        })
        .collect();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        // Select the run whose head key is smallest; ties keep the earlier
        // run for stability.
        let mut best: Option<usize> = None;
        for (r, run) in rev.iter().enumerate() {
            let Some(head) = run.last() else { continue };
            let better = match best.and_then(|b| rev.get(b)).and_then(|b| b.last()) {
                Some(cur) => comparator.compare(&head.key, &cur.key) == std::cmp::Ordering::Less,
                None => true,
            };
            if better {
                best = Some(r);
            }
        }
        match best.and_then(|r| rev.get_mut(r)).and_then(Vec::pop) {
            Some(kv) => out.push(kv),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::kv::BytesComparator;
    use std::sync::Arc;

    fn cmp() -> ComparatorRef {
        Arc::new(BytesComparator)
    }

    fn kv(k: u8, v: u8) -> KvPair {
        KvPair::new(vec![k], vec![v])
    }

    #[test]
    fn small_input_one_segment_per_partition() {
        let mut buf = SortBuffer::new(1 << 20, cmp(), None);
        buf.collect(1, kv(9, 0));
        buf.collect(0, kv(3, 0));
        buf.collect(1, kv(2, 0));
        buf.collect(0, kv(1, 0));
        let segs = buf.finish(2);
        let keys = |p: usize| segs[p].iter().map(|x| x.key[0]).collect::<Vec<_>>();
        assert_eq!(keys(0), vec![1, 3]);
        assert_eq!(keys(1), vec![2, 9]);
    }

    #[test]
    fn tiny_capacity_forces_spills_but_output_is_sorted() {
        let mut buf = SortBuffer::new(8, cmp(), None);
        for i in (0..100u8).rev() {
            buf.collect((i % 3) as usize, kv(i, 0));
        }
        assert!(buf.spill_count() > 5);
        assert!(buf.spill_bytes() > 0);
        let segs = buf.finish(3);
        let mut seen = 0;
        for (p, seg) in segs.iter().enumerate() {
            seen += seg.len();
            for w in seg.windows(2) {
                assert!(w[0].key <= w[1].key, "partition {p} out of order");
            }
            for x in seg {
                assert_eq!((x.key[0] % 3) as usize, p);
            }
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn combiner_shrinks_duplicate_keys() {
        let combine: CombinerRef = Arc::new(|group: Vec<KvPair>| {
            let sum: u64 = group.iter().map(|kv| kv.value[0] as u64).sum();
            vec![KvPair::new(group[0].key.to_vec(), vec![sum.min(255) as u8])]
        });
        let mut buf = SortBuffer::new(1 << 20, cmp(), Some(combine));
        for _ in 0..10 {
            buf.collect(0, kv(7, 1));
        }
        buf.collect(0, kv(8, 1));
        let segs = buf.finish(1);
        assert_eq!(segs[0].len(), 2);
        assert_eq!(segs[0][0].value[0], 10); // combined sum
        assert_eq!(segs[0][1].value[0], 1);
    }

    #[test]
    fn combiner_respects_partition_boundaries() {
        let combine: CombinerRef = Arc::new(|group: Vec<KvPair>| {
            vec![KvPair::new(group[0].key.to_vec(), vec![group.len() as u8])]
        });
        let mut buf = SortBuffer::new(1 << 20, cmp(), Some(combine));
        // Same key routed to two different partitions must not merge.
        buf.collect(0, kv(5, 1));
        buf.collect(1, kv(5, 1));
        buf.collect(0, kv(5, 1));
        let segs = buf.finish(2);
        assert_eq!(segs[0].len(), 1);
        assert_eq!(segs[0][0].value[0], 2);
        assert_eq!(segs[1].len(), 1);
        assert_eq!(segs[1][0].value[0], 1);
    }

    #[test]
    fn merge_runs_is_stableish_and_ordered() {
        let runs = vec![
            vec![kv(1, 0), kv(4, 0)],
            vec![kv(2, 0), kv(4, 1)],
            vec![],
            vec![kv(0, 0)],
        ];
        let merged = merge_sorted_runs(runs, &cmp());
        let keys: Vec<u8> = merged.iter().map(|x| x.key[0]).collect();
        assert_eq!(keys, vec![0, 1, 2, 4, 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hdm_common::kv::BytesComparator;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #[test]
        fn finish_preserves_every_pair_sorted(
            pairs in proptest::collection::vec((0usize..4, any::<u8>(), any::<u8>()), 0..300),
            capacity in 4usize..256,
        ) {
            let cmp: ComparatorRef = Arc::new(BytesComparator);
            let mut buf = SortBuffer::new(capacity, Arc::clone(&cmp), None);
            for &(p, k, v) in &pairs {
                buf.collect(p, KvPair::new(vec![k], vec![v]));
            }
            let segs = buf.finish(4);
            let total: usize = segs.iter().map(Vec::len).sum();
            prop_assert_eq!(total, pairs.len());
            for seg in &segs {
                for w in seg.windows(2) {
                    prop_assert!(w[0].key <= w[1].key);
                }
            }
            // Multiset equality per partition.
            for (p, seg) in segs.iter().enumerate() {
                let mut expect: Vec<(u8, u8)> = pairs
                    .iter()
                    .filter(|&&(pp, _, _)| pp == p)
                    .map(|&(_, k, v)| (k, v))
                    .collect();
                expect.sort_unstable();
                let mut got: Vec<(u8, u8)> = seg.iter().map(|x| (x.key[0], x.value[0])).collect();
                got.sort_unstable();
                prop_assert_eq!(got, expect);
            }
        }
    }
}
