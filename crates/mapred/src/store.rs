//! The map-output store: materialized segments reducers pull from.
//!
//! Hadoop map tasks write their merged output to TaskTracker-local disk;
//! reduce-side copier threads fetch each map's per-partition segment over
//! HTTP. This store is the in-process stand-in: segments keyed by
//! `(map, partition)`, with sizes recorded so the timing model can charge
//! the pull shuffle with the exact volumes moved.

use hdm_common::error::{HdmError, Result};
use hdm_common::kv::KvPair;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Shared store of materialized map-output segments.
#[derive(Debug, Default)]
pub struct MapOutputStore {
    segments: Mutex<HashMap<(usize, usize), Vec<KvPair>>>,
}

impl MapOutputStore {
    /// An empty store.
    pub fn new() -> MapOutputStore {
        MapOutputStore::default()
    }

    /// Publish all of one map task's segments (one per partition).
    pub fn publish(&self, map: usize, segments: Vec<Vec<KvPair>>) {
        let mut guard = self.segments.lock();
        for (partition, seg) in segments.into_iter().enumerate() {
            guard.insert((map, partition), seg);
        }
    }

    /// Pull one segment (a reducer fetching from one finished map).
    ///
    /// # Errors
    /// [`HdmError::MapRed`] if the segment was never published — in real
    /// Hadoop this is a fetch failure.
    pub fn fetch(&self, map: usize, partition: usize) -> Result<Vec<KvPair>> {
        self.segments
            .lock()
            .get(&(map, partition))
            .cloned()
            .ok_or_else(|| {
                HdmError::MapRed(format!(
                    "fetch failure: map {map} partition {partition} missing"
                ))
            })
    }

    /// Serialized size of one segment in bytes (0 if missing).
    pub fn segment_bytes(&self, map: usize, partition: usize) -> u64 {
        self.segments
            .lock()
            .get(&(map, partition))
            .map(|seg| seg.iter().map(|kv| kv.wire_size() as u64).sum())
            .unwrap_or(0)
    }

    /// Total bytes materialized across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments
            .lock()
            .values()
            .map(|seg| seg.iter().map(|kv| kv.wire_size() as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(k: u8) -> KvPair {
        KvPair::new(vec![k], vec![k, k])
    }

    #[test]
    fn publish_then_fetch() {
        let store = MapOutputStore::new();
        store.publish(0, vec![vec![kv(1)], vec![kv(2), kv(3)]]);
        assert_eq!(store.fetch(0, 0).unwrap(), vec![kv(1)]);
        assert_eq!(store.fetch(0, 1).unwrap().len(), 2);
        assert!(store.fetch(1, 0).is_err());
    }

    #[test]
    fn sizes_are_tracked() {
        let store = MapOutputStore::new();
        store.publish(2, vec![vec![kv(1), kv(2)], vec![]]);
        assert_eq!(store.segment_bytes(2, 0), 2 * kv(1).wire_size() as u64);
        assert_eq!(store.segment_bytes(2, 1), 0);
        assert_eq!(store.total_bytes(), store.segment_bytes(2, 0));
    }
}
