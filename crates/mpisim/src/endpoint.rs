//! Per-rank endpoint: the object through which a rank communicates.

use crate::metrics::WorldMetrics;
use crate::{Rank, Tag};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use hdm_common::error::{HdmError, Result};
use hdm_faults::{FaultPlan, Site};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes (shared, zero-copy between ranks).
    pub payload: Bytes,
}

/// Handle for a non-blocking send. Completed once the message has been
/// accepted by the destination's channel (buffer reusable, in MPI terms).
#[derive(Debug)]
pub struct SendRequest {
    done: Arc<AtomicBool>,
}

impl SendRequest {
    /// Non-consuming completion check (does not drive progress; use
    /// [`Endpoint::test_send`] to also progress pending sends).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// Handle for a non-blocking receive: a posted matching rule.
#[derive(Debug)]
pub struct RecvRequest {
    src: Option<Rank>,
    tag: Option<Tag>,
    received: Option<Msg>,
}

impl RecvRequest {
    /// The matched message, if completed.
    pub fn message(&self) -> Option<&Msg> {
        self.received.as_ref()
    }
}

/// One pending (not yet channel-accepted) outgoing message.
#[derive(Debug)]
struct PendingSend {
    dst: Rank,
    msg: Msg,
    done: Arc<AtomicBool>,
}

/// The per-rank communication endpoint.
///
/// Not `Clone`: exactly one endpoint exists per rank, and it is moved
/// into the rank's thread.
pub struct Endpoint {
    rank: Rank,
    incoming: Receiver<Msg>,
    outgoing: Vec<Sender<Msg>>,
    /// Messages that matched no in-progress `recv` yet (out-of-order
    /// arrivals kept for later tag/src matching).
    mailbox: VecDeque<Msg>,
    /// Sends parked on a full destination channel, in program order per
    /// destination (preserves MPI's non-overtaking rule).
    pending: VecDeque<PendingSend>,
    metrics: Arc<WorldMetrics>,
    barrier: Arc<std::sync::Barrier>,
    /// Shared per-rank failure flags: a crashed rank raises its own flag
    /// so peers blocked on it fail fast instead of waiting out a timeout.
    poisoned: Arc<Vec<AtomicBool>>,
    faults: FaultPlan,
    /// Default deadline applied by blocking `recv`/`wait`; `None` blocks
    /// forever (the pre-fault-tolerance semantics).
    recv_timeout: Option<Duration>,
    /// Cooperative cancellation, polled once per blocking-wait slice. A
    /// fired token interrupts `recv`/`wait_send` with `Cancelled`; it
    /// never poisons, so sibling queries sharing the process stay clean.
    cancel: hdm_common::CancelToken,
    /// Messages handed to `isend` so far; keys the fault plan's
    /// per-message drop/delay decisions.
    send_seq: u64,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("mailbox", &self.mailbox.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl Endpoint {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor mirroring World's wiring
    pub(crate) fn new(
        rank: Rank,
        incoming: Receiver<Msg>,
        outgoing: Vec<Sender<Msg>>,
        metrics: Arc<WorldMetrics>,
        barrier: Arc<std::sync::Barrier>,
        poisoned: Arc<Vec<AtomicBool>>,
        faults: FaultPlan,
        recv_timeout: Option<Duration>,
        cancel: hdm_common::CancelToken,
    ) -> Endpoint {
        Endpoint {
            rank,
            incoming,
            outgoing,
            mailbox: VecDeque::new(),
            pending: VecDeque::new(),
            metrics,
            barrier,
            poisoned,
            faults,
            recv_timeout,
            cancel,
            send_seq: 0,
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.outgoing.len()
    }

    /// Mark this rank as failed. Peers that block on it (matched `recv`,
    /// or any `recv` once their mailbox is dry) fail fast with
    /// [`HdmError::RankFailed`] instead of waiting out their deadline.
    pub fn poison(&self) {
        if let Some(flag) = self.poisoned.get(self.rank) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether `rank` declared itself failed.
    pub fn is_poisoned(&self, rank: Rank) -> bool {
        self.poisoned
            .get(rank)
            .map(|flag| flag.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// The deadline blocking `recv`/`wait` calls apply by default.
    pub fn default_recv_timeout(&self) -> Option<Duration> {
        self.recv_timeout
    }

    /// Non-blocking send (`MPI_Isend`). The returned request completes
    /// once the destination channel accepts the message; until then the
    /// message sits in this endpoint's pending queue and is pushed by
    /// [`Endpoint::progress`].
    ///
    /// # Errors
    /// [`HdmError::Mpi`] if `dst` is out of range.
    pub fn isend(&mut self, dst: Rank, tag: Tag, payload: Bytes) -> Result<SendRequest> {
        if dst >= self.outgoing.len() {
            return Err(HdmError::Mpi(format!(
                "isend to invalid rank {dst} (world size {})",
                self.outgoing.len()
            )));
        }
        if self.faults.is_enabled() {
            let seq = self.send_seq;
            self.send_seq += 1;
            if self.faults.should_drop(Site::MpiSend, self.rank, seq) {
                // The message vanishes on the wire: the send "completes"
                // (the buffer is reusable) but nothing ever arrives.
                self.faults.note_injected(Site::MpiSend);
                return Ok(SendRequest {
                    done: Arc::new(AtomicBool::new(true)),
                });
            }
            if let Some(delay) = self.faults.send_delay(Site::MpiSend, self.rank, seq) {
                self.faults.note_injected(Site::MpiSend);
                std::thread::sleep(delay);
            }
        }
        let done = Arc::new(AtomicBool::new(false));
        self.metrics
            .record_send(self.rank, dst, payload.len() as u64);
        self.pending.push_back(PendingSend {
            dst,
            msg: Msg {
                src: self.rank,
                tag,
                payload,
            },
            done: Arc::clone(&done),
        });
        self.progress();
        Ok(SendRequest { done })
    }

    /// Blocking send (`MPI_Send`): isend + wait.
    ///
    /// # Errors
    /// [`HdmError::Mpi`] on invalid destination or a disconnected channel.
    pub fn send(&mut self, dst: Rank, tag: Tag, payload: Bytes) -> Result<()> {
        let mut req = self.isend(dst, tag, payload)?;
        self.wait_send(&mut req)
    }

    /// Post a non-blocking receive (`MPI_Irecv`): a matching rule for
    /// `src` (None = any source) and `tag` (None = any tag).
    pub fn irecv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> RecvRequest {
        RecvRequest {
            src,
            tag,
            received: None,
        }
    }

    /// Drive the progress engine: push parked sends whose destination
    /// channel has room. Returns the number of messages moved.
    pub fn progress(&mut self) -> usize {
        let mut moved = 0;
        // Per-destination order must be preserved: only the *first*
        // pending message for each destination may be tried.
        let mut blocked: Vec<bool> = vec![false; self.outgoing.len()];
        let mut i = 0;
        while let Some(entry) = self.pending.get(i) {
            let dst = entry.dst;
            // A destination outside the world (or already backpressured)
            // stays parked; isend validated dst so out-of-range here would
            // mean internal corruption, which we skip rather than panic on.
            let dst_blocked = blocked.get(dst).copied().unwrap_or(true);
            let channel = self.outgoing.get(dst);
            match channel {
                Some(tx) if !dst_blocked => match tx.try_send(entry.msg.clone()) {
                    Ok(()) => {
                        if let Some(sent) = self.pending.remove(i) {
                            sent.done.store(true, Ordering::Release);
                        }
                        moved += 1;
                    }
                    Err(_) => {
                        if let Some(b) = blocked.get_mut(dst) {
                            *b = true;
                        }
                        i += 1;
                    }
                },
                _ => i += 1,
            }
        }
        moved
    }

    /// Test a send request (`MPI_Test`), driving progress.
    pub fn test_send(&mut self, req: &mut SendRequest) -> bool {
        if req.is_done() {
            return true;
        }
        self.progress();
        req.is_done()
    }

    /// Wait for one send request (`MPI_Wait`), honoring the endpoint's
    /// default deadline when one is configured.
    ///
    /// # Errors
    /// [`HdmError::Mpi`] if the destination channel disconnected;
    /// [`HdmError::Timeout`] if a configured deadline expires first.
    pub fn wait_send(&mut self, req: &mut SendRequest) -> Result<()> {
        let deadline = self.recv_timeout.map(|t| Instant::now() + t);
        while !req.is_done() {
            // Cancelled queries stop waiting for channel room; the token
            // outranks the deadline and never poisons the endpoint.
            self.cancel.bail_if_cancelled()?;
            if self.progress() == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        self.faults.note_detected(Site::MpiSend);
                        return Err(HdmError::Timeout(format!(
                            "rank {}: send not accepted within {:?}",
                            self.rank, self.recv_timeout
                        )));
                    }
                }
                // Channel full: drain one incoming message into the
                // mailbox to avoid deadlock, or back off briefly.
                if !self.poll_incoming() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
        Ok(())
    }

    /// Wait for all send requests (`MPI_Waitall`).
    ///
    /// # Errors
    /// [`HdmError::Mpi`] if a channel disconnected.
    pub fn waitall(&mut self, reqs: &mut [SendRequest]) -> Result<()> {
        for r in reqs {
            self.wait_send(r)?;
        }
        Ok(())
    }

    /// Test a posted receive (`MPI_Test` on an `Irecv` request): returns
    /// the message if one matching the rule has arrived.
    ///
    /// # Errors
    /// [`HdmError::Mpi`] if the incoming channel disconnected and no
    /// match can ever arrive.
    pub fn test_recv(&mut self, req: &mut RecvRequest) -> Result<Option<Msg>> {
        self.progress();
        self.drain_incoming();
        if let Some(pos) = self.match_mailbox(req.src, req.tag) {
            if let Some(msg) = self.mailbox.remove(pos) {
                req.received = Some(msg.clone());
                return Ok(Some(msg));
            }
        }
        Ok(None)
    }

    /// Blocking receive (`MPI_Recv`) with optional source/tag matching,
    /// bounded by the endpoint's default deadline when one is configured.
    ///
    /// # Errors
    /// [`HdmError::Mpi`] if all senders disconnected with no match
    /// buffered (the message can never arrive); [`HdmError::RankFailed`]
    /// if the awaited source is poisoned; [`HdmError::Timeout`] if a
    /// configured deadline expires first.
    pub fn recv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> Result<Msg> {
        self.recv_deadline(src, tag, self.recv_timeout)
    }

    /// [`Endpoint::recv`] with an explicit deadline (`None` blocks
    /// forever), overriding the endpoint default.
    ///
    /// # Errors
    /// As [`Endpoint::recv`].
    pub fn recv_deadline(
        &mut self,
        src: Option<Rank>,
        tag: Option<Tag>,
        timeout: Option<Duration>,
    ) -> Result<Msg> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            self.progress();
            self.drain_incoming();
            if let Some(pos) = self.match_mailbox(src, tag) {
                if let Some(msg) = self.mailbox.remove(pos) {
                    return Ok(msg);
                }
            }
            // A fired token interrupts the wait before the deadline and
            // without touching poison flags: cancellation must tear down
            // only this query's world, never a sibling's.
            self.cancel.bail_if_cancelled()?;
            // A poisoned source can never deliver the awaited message:
            // fail fast rather than waiting out the deadline.
            if let Some(s) = src {
                if self.is_poisoned(s) {
                    self.faults.note_detected(Site::MpiSend);
                    return Err(HdmError::RankFailed(format!(
                        "rank {}: peer rank {s} failed (endpoint poisoned)",
                        self.rank
                    )));
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    self.faults.note_detected(Site::MpiSend);
                    return Err(HdmError::Timeout(format!(
                        "rank {}: recv timed out after {:?} (src {:?}, tag {:?})",
                        self.rank, timeout, src, tag
                    )));
                }
            }
            // Block briefly for the next arrival, keeping the progress
            // engine alive for our own pending sends.
            match self.incoming.recv_timeout(Duration::from_micros(200)) {
                Ok(msg) => self.mailbox.push_back(msg),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    if self.match_mailbox(src, tag).is_none() {
                        return Err(HdmError::Mpi(format!(
                            "rank {}: recv would block forever (all senders gone)",
                            self.rank
                        )));
                    }
                }
            }
        }
    }

    /// Full-world barrier.
    pub fn barrier(&self) {
        // hdm-allow(unbounded-blocking): MPI_Barrier semantics — blocks until every rank arrives by definition
        self.barrier.wait();
    }

    fn poll_incoming(&mut self) -> bool {
        match self.incoming.try_recv() {
            Ok(msg) => {
                self.mailbox.push_back(msg);
                true
            }
            Err(_) => false,
        }
    }

    fn drain_incoming(&mut self) {
        while let Ok(msg) = self.incoming.try_recv() {
            self.mailbox.push_back(msg);
        }
    }

    fn match_mailbox(&self, src: Option<Rank>, tag: Option<Tag>) -> Option<usize> {
        self.mailbox.iter().position(|m| {
            src.map(|s| m.src == s).unwrap_or(true) && tag.map(|t| m.tag == t).unwrap_or(true)
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]
mod tests {
    use super::*;
    use crate::{World, WorldConfig};

    #[test]
    fn progress_preserves_per_destination_order_under_backpressure() {
        let world = World::new(
            2,
            WorldConfig {
                channel_capacity: 2,
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                let mut reqs = Vec::new();
                for i in 0..50u8 {
                    reqs.push(ep.isend(1, Tag(0), Bytes::from(vec![i])).unwrap());
                }
                ep.waitall(&mut reqs).unwrap();
                Vec::new()
            } else {
                std::thread::sleep(Duration::from_millis(2));
                (0..50)
                    .map(|_| ep.recv(Some(0), Some(Tag(0))).unwrap().payload[0])
                    .collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn recv_any_source_matches_first_arrival() {
        let world = World::new(3, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                let mut srcs = vec![
                    ep.recv(None, Some(Tag(1))).unwrap().src,
                    ep.recv(None, Some(Tag(1))).unwrap().src,
                ];
                srcs.sort_unstable();
                srcs
            } else {
                ep.send(0, Tag(1), Bytes::new()).unwrap();
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![1, 2]);
    }

    #[test]
    fn pending_counts_visible_in_debug() {
        let world = World::new(
            1,
            WorldConfig {
                channel_capacity: 1,
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(|mut ep| {
            // Two self-sends with capacity 1: the second parks.
            let _a = ep.isend(0, Tag(0), Bytes::from_static(b"a")).unwrap();
            let _b = ep.isend(0, Tag(0), Bytes::from_static(b"b")).unwrap();
            let dbg = format!("{ep:?}");
            let first = ep.recv(Some(0), Some(Tag(0))).unwrap();
            let second = ep.recv(Some(0), Some(Tag(0))).unwrap();
            (dbg, first.payload, second.payload)
        });
        let (dbg, a, b) = &out[0];
        assert!(dbg.contains("pending: 1"), "{dbg}");
        assert_eq!(a, &Bytes::from_static(b"a"));
        assert_eq!(b, &Bytes::from_static(b"b"));
    }
}
