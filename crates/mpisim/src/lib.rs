#![warn(missing_docs)]

//! # hdm-mpi
//!
//! An in-process MPI-like message-passing library.
//!
//! The paper's DataMPI engine is built on MVAPICH2 and uses exactly the
//! point-to-point subset of MPI: `MPI_Isend`, `MPI_Irecv`, `MPI_Test`,
//! `MPI_Wait`, `MPI_Waitall`, plus blocking `MPI_Send`/`MPI_Recv`
//! (Section IV-C). This crate reproduces those semantics over
//! threads-and-channels so the DataMPI shuffle engine above it is a
//! faithful port:
//!
//! * A [`World`] of `n` ranks; each rank owns an [`Endpoint`] moved into
//!   its thread ([`World::run`] is the `mpirun` analogue).
//! * **Buffered, ordered delivery** per (source, destination) pair —
//!   MPI's non-overtaking guarantee.
//! * **Non-blocking operations with a progress engine**: [`Endpoint::isend`]
//!   enqueues into a bounded per-destination channel; when the channel is
//!   full the message parks in a pending queue that
//!   [`Endpoint::progress`] drains. `test`/`wait`/`recv` all drive
//!   progress, like a real MPI progress engine, so backpressure creates
//!   genuine blocking-style synchronization stalls — the effect behind
//!   the paper's Figure 6.
//! * **Tag + source matching** on receive, with an out-of-order mailbox.
//! * **Per-link byte accounting** ([`WorldMetrics`]) consumed by the
//!   discrete-event cluster model to charge network time.
//!
//! * **Fault awareness**: a [`WorldConfig`] can carry an
//!   [`hdm_faults::FaultPlan`] (message drops/delays on `isend`) and a
//!   receive deadline; endpoints of crashed ranks can be **poisoned** so
//!   peers fail fast with
//!   [`HdmError::RankFailed`](hdm_common::error::HdmError::RankFailed)
//!   instead of blocking forever.
//!
//! # Example
//!
//! ```
//! use hdm_mpi::{World, Tag};
//!
//! let world = World::new(2, Default::default()).unwrap();
//! let outputs = world.run(|mut ep| {
//!     if ep.rank() == 0 {
//!         ep.send(1, Tag(7), b"ping".as_ref().into()).unwrap();
//!         0u64
//!     } else {
//!         let msg = ep.recv(Some(0), Some(Tag(7))).unwrap();
//!         msg.payload.len() as u64
//!     }
//! });
//! assert_eq!(outputs, vec![0, 4]);
//! ```

mod endpoint;
mod metrics;

pub use endpoint::{Endpoint, Msg, RecvRequest, SendRequest};
pub use metrics::WorldMetrics;

use crossbeam::channel::{bounded, Receiver, Sender};
use hdm_common::error::{HdmError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::time::Duration;

/// Message tag (matching key), like MPI's `tag` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

/// Rank of a process within a [`World`].
pub type Rank = usize;

/// World-construction options.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Channel capacity per destination, in messages. Small capacities
    /// increase backpressure (more pending-queue parking); `None` means
    /// effectively unbounded (2^20).
    pub channel_capacity: usize,
    /// Observability sink for world-level traffic metrics. Defaults to a
    /// disabled handle: counter updates compile to one relaxed atomic
    /// check per send.
    pub obs: hdm_obs::ObsHandle,
    /// Fault plan injecting message drops/delays at the `isend` site.
    /// Defaults to a disabled plan: one relaxed atomic load per send.
    pub faults: hdm_faults::FaultPlan,
    /// Default deadline for blocking `recv`/`wait` calls. `None` (the
    /// default) keeps the historical block-forever semantics; recovery
    /// layers set it from `hive.ft.recv.timeout.ms` so a crashed peer
    /// surfaces as [`HdmError::Timeout`] instead of a hang.
    pub recv_timeout: Option<Duration>,
    /// Cooperative cancellation token. Blocking `recv`/`wait` calls poll
    /// it once per progress slice (one relaxed atomic load) and return
    /// [`HdmError::Cancelled`](hdm_common::error::HdmError::Cancelled)
    /// when it fires — *without* poisoning any endpoint, so a cancelled
    /// query tears down its world while sibling queries sharing the
    /// process stay healthy. Defaults to a token that never fires.
    pub cancel: hdm_common::CancelToken,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            channel_capacity: 1024,
            obs: hdm_obs::ObsHandle::default(),
            faults: hdm_faults::FaultPlan::default(),
            recv_timeout: None,
            cancel: hdm_common::CancelToken::default(),
        }
    }
}

/// A communicator: `n` ranks with all-to-all channels.
pub struct World {
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Option<Receiver<Msg>>>,
    metrics: Arc<WorldMetrics>,
    barrier: Arc<std::sync::Barrier>,
    taken: AtomicUsize,
    poisoned: Arc<Vec<AtomicBool>>,
    faults: hdm_faults::FaultPlan,
    recv_timeout: Option<Duration>,
    cancel: hdm_common::CancelToken,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("size", &self.senders.len())
            .finish()
    }
}

impl World {
    /// Create a world of `size` ranks.
    ///
    /// # Errors
    /// [`HdmError::Mpi`] if `size` is zero — an empty communicator has
    /// no rank to run.
    pub fn new(size: usize, config: WorldConfig) -> Result<World> {
        if size == 0 {
            return Err(HdmError::Mpi(
                "world size must be positive (got 0 ranks)".to_string(),
            ));
        }
        let cap = config.channel_capacity.max(1);
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = bounded(cap);
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Ok(World {
            senders,
            receivers,
            metrics: Arc::new(WorldMetrics::new(size, config.obs)),
            barrier: Arc::new(std::sync::Barrier::new(size)),
            taken: AtomicUsize::new(0),
            poisoned: Arc::new((0..size).map(|_| AtomicBool::new(false)).collect()),
            faults: config.faults,
            recv_timeout: config.recv_timeout,
            cancel: config.cancel,
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Traffic counters.
    pub fn metrics(&self) -> Arc<WorldMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Take the endpoint for the next unclaimed rank (ranks are handed
    /// out in order 0, 1, …).
    ///
    /// # Panics
    /// Panics if all endpoints were already taken.
    #[allow(clippy::expect_used)] // documented `# Panics` contract, setup-time only
    pub fn endpoint(&mut self) -> Endpoint {
        let rank = self.taken.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let rx = self
            .receivers
            .get_mut(rank)
            .and_then(|slot| slot.take())
            // hdm-allow(no-panic-in-hot-path): documented `# Panics` contract in setup code; runs before any rank traffic starts
            .expect("endpoint already taken for this rank");
        Endpoint::new(
            rank,
            rx,
            self.senders.clone(),
            Arc::clone(&self.metrics),
            Arc::clone(&self.barrier),
            Arc::clone(&self.poisoned),
            self.faults.clone(),
            self.recv_timeout,
            self.cancel.clone(),
        )
    }

    /// Spawn one thread per rank running `f`, join them all, and return
    /// their outputs in rank order — the `mpirun` of this library.
    ///
    /// # Panics
    /// Propagates panics from rank threads.
    pub fn run<T, F>(mut self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Endpoint) -> T + Send + Sync + 'static,
    {
        let size = self.size();
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for _ in 0..size {
            let ep = self.endpoint();
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || f(ep)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                // Re-raise the rank thread's panic payload in the caller,
                // preserving the original message for the test harness.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn ping_pong() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                ep.send(1, Tag(1), Bytes::from_static(b"hello")).unwrap();
                let m = ep.recv(Some(1), Some(Tag(2))).unwrap();
                m.payload
            } else {
                let m = ep.recv(Some(0), Some(Tag(1))).unwrap();
                ep.send(0, Tag(2), m.payload.clone()).unwrap();
                m.payload
            }
        });
        assert_eq!(out[0], Bytes::from_static(b"hello"));
        assert_eq!(out[1], Bytes::from_static(b"hello"));
    }

    #[test]
    fn ordered_delivery_per_pair() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                for i in 0..100u32 {
                    ep.send(1, Tag(0), Bytes::from(i.to_be_bytes().to_vec()))
                        .unwrap();
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| {
                        let m = ep.recv(Some(0), Some(Tag(0))).unwrap();
                        u32::from_be_bytes(m.payload.as_ref().try_into().unwrap())
                    })
                    .collect()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tag_matching_leaves_other_messages() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                ep.send(1, Tag(1), Bytes::from_static(b"first")).unwrap();
                ep.send(1, Tag(2), Bytes::from_static(b"second")).unwrap();
                Vec::new()
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier.
                let b = ep.recv(Some(0), Some(Tag(2))).unwrap();
                let a = ep.recv(Some(0), Some(Tag(1))).unwrap();
                vec![b.payload, a.payload]
            }
        });
        assert_eq!(out[1][0], Bytes::from_static(b"second"));
        assert_eq!(out[1][1], Bytes::from_static(b"first"));
    }

    #[test]
    fn all_to_all_with_tiny_capacity_does_not_deadlock() {
        // Capacity 1 forces the progress engine to park pending sends.
        let n = 6;
        let world = World::new(
            n,
            WorldConfig {
                channel_capacity: 1,
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(move |mut ep| {
            let me = ep.rank();
            let mut reqs = Vec::new();
            for dst in 0..ep.world_size() {
                for k in 0..20u32 {
                    let payload = Bytes::from(format!("{me}->{dst}:{k}"));
                    reqs.push(ep.isend(dst, Tag(9), payload).unwrap());
                }
            }
            let mut got = 0;
            while got < 20 * ep.world_size() {
                ep.recv(None, Some(Tag(9))).unwrap();
                got += 1;
            }
            ep.waitall(&mut reqs).unwrap();
            got
        });
        assert!(out.iter().all(|&g| g == 20 * n));
    }

    #[test]
    fn isend_completion_via_test() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                let mut req = ep.isend(1, Tag(0), Bytes::from_static(b"x")).unwrap();
                while !ep.test_send(&mut req) {
                    std::thread::yield_now();
                }
                true
            } else {
                ep.recv(Some(0), Some(Tag(0))).unwrap();
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn irecv_completes_when_message_arrives() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 1 {
                let mut rr = ep.irecv(Some(0), Some(Tag(4)));
                // Busy-test until completion.
                loop {
                    if let Some(msg) = ep.test_recv(&mut rr).unwrap() {
                        return msg.payload;
                    }
                    std::thread::yield_now();
                }
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ep.send(1, Tag(4), Bytes::from_static(b"late")).unwrap();
                Bytes::new()
            }
        });
        assert_eq!(out[1], Bytes::from_static(b"late"));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let world = World::new(4, WorldConfig::default()).unwrap();
        let out = world.run(move |ep| {
            c2.fetch_add(1, Ordering::SeqCst);
            ep.barrier();
            // After the barrier every rank must observe all increments.
            c2.load(Ordering::SeqCst)
        });
        assert!(out.iter().all(|&v| v == 4), "{out:?}");
    }

    #[test]
    fn metrics_count_bytes_per_link() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let metrics = world.metrics();
        world.run(|mut ep| {
            if ep.rank() == 0 {
                ep.send(1, Tag(0), Bytes::from(vec![0u8; 100])).unwrap();
            } else {
                ep.recv(Some(0), Some(Tag(0))).unwrap();
            }
        });
        assert_eq!(metrics.bytes_on_link(0, 1), 100);
        assert_eq!(metrics.bytes_on_link(1, 0), 0);
        assert_eq!(metrics.total_bytes(), 100);
        assert_eq!(metrics.total_messages(), 1);
    }

    #[test]
    fn self_send_works() {
        let world = World::new(1, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            ep.send(0, Tag(0), Bytes::from_static(b"me")).unwrap();
            ep.recv(Some(0), Some(Tag(0))).unwrap().payload
        });
        assert_eq!(out[0], Bytes::from_static(b"me"));
    }

    #[test]
    fn random_traffic_stress_delivers_exactly_once() {
        // Randomized all-to-all with tiny channel capacity: every
        // message must arrive exactly once, in per-pair order.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in [3u64, 17, 99] {
            let n = 5;
            let world = World::new(
                n,
                WorldConfig {
                    channel_capacity: 2,
                    ..WorldConfig::default()
                },
            )
            .unwrap();
            let out = world.run(move |mut ep| {
                let me = ep.rank();
                let mut rng = StdRng::seed_from_u64(seed ^ (me as u64) << 8);
                let mut sent = vec![0u32; ep.world_size()];
                let mut reqs = Vec::new();
                let msgs = 40 + rng.random_range(0..40);
                for _ in 0..msgs {
                    let dst = rng.random_range(0..ep.world_size());
                    let payload = Bytes::from(sent[dst].to_be_bytes().to_vec());
                    sent[dst] += 1;
                    reqs.push(ep.isend(dst, Tag(1), payload).unwrap());
                }
                // Tell everyone how many to expect.
                let counts: Vec<u32> = sent.clone();
                for (dst, count) in counts.iter().enumerate() {
                    reqs.push(
                        ep.isend(dst, Tag(2), Bytes::from(count.to_be_bytes().to_vec()))
                            .unwrap(),
                    );
                }
                // Receive counts + data from everyone.
                let mut expect: Vec<Option<u32>> = vec![None; ep.world_size()];
                let mut got: Vec<u32> = vec![0; ep.world_size()];
                let mut next_seq: Vec<u32> = vec![0; ep.world_size()];
                loop {
                    let done = expect
                        .iter()
                        .zip(&got)
                        .all(|(e, g)| e.map(|e| e == *g).unwrap_or(false));
                    if done {
                        break;
                    }
                    let msg = ep.recv(None, None).unwrap();
                    let v = u32::from_be_bytes(msg.payload.as_ref().try_into().unwrap());
                    match msg.tag {
                        Tag(1) => {
                            assert_eq!(v, next_seq[msg.src], "per-pair order violated");
                            next_seq[msg.src] += 1;
                            got[msg.src] += 1;
                        }
                        Tag(2) => expect[msg.src] = Some(v),
                        other => panic!("unexpected tag {other:?}"),
                    }
                }
                ep.waitall(&mut reqs).unwrap();
                got.iter().sum::<u32>()
            });
            assert!(out.iter().all(|&g| g > 0));
        }
    }

    #[test]
    fn zero_rank_world_is_an_error() {
        let err = match World::new(0, WorldConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("size 0 must be rejected"),
        };
        assert_eq!(err.subsystem(), "mpi");
        assert!(err.message().contains("0 ranks"), "{err}");
    }

    #[test]
    fn recv_deadline_times_out_instead_of_hanging() {
        let world = World::new(
            2,
            WorldConfig {
                recv_timeout: Some(Duration::from_millis(30)),
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                // Never send: rank 1's recv must hit its deadline.
                String::new()
            } else {
                let start = std::time::Instant::now();
                let err = ep.recv(Some(0), Some(Tag(1))).unwrap_err();
                assert!(start.elapsed() >= Duration::from_millis(30));
                err.subsystem().to_string()
            }
        });
        assert_eq!(out[1], "timeout");
    }

    #[test]
    fn explicit_deadline_overrides_endpoint_default() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                true
            } else {
                ep.recv_deadline(Some(0), None, Some(Duration::from_millis(10)))
                    .is_err()
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn poisoned_peer_fails_fast() {
        let world = World::new(
            2,
            WorldConfig {
                // A long deadline: the poison check must beat it.
                recv_timeout: Some(Duration::from_secs(30)),
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                // Crash without sending anything.
                ep.poison();
                String::new()
            } else {
                let start = std::time::Instant::now();
                let err = ep.recv(Some(0), Some(Tag(1))).unwrap_err();
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "fail-fast took the slow path"
                );
                err.subsystem().to_string()
            }
        });
        assert_eq!(out[1], "rank-failed");
    }

    #[test]
    fn poison_does_not_eat_already_delivered_messages() {
        let world = World::new(2, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| {
            if ep.rank() == 0 {
                ep.send(1, Tag(1), Bytes::from_static(b"last words"))
                    .unwrap();
                ep.poison();
                Bytes::new()
            } else {
                // Delivered-before-crash data must still match.
                ep.recv(Some(0), Some(Tag(1))).unwrap().payload
            }
        });
        assert_eq!(out[1], Bytes::from_static(b"last words"));
    }

    #[test]
    fn fault_plan_drops_messages_deterministically() {
        use hdm_faults::{FaultPlan, Site};
        // Find a (seed, seq) whose send is dropped, then check the wire.
        let plan = (0..256u64)
            .map(FaultPlan::with_seed)
            .find(|p| (0..64).any(|seq| p.should_drop(Site::MpiSend, 0, seq)))
            .expect("no dropping seed in 256 candidates");
        let sends: u64 = 64;
        let expected: u64 = (0..sends)
            .filter(|&seq| !plan.should_drop(Site::MpiSend, 0, seq))
            .count() as u64;
        assert!(expected < sends, "at least one message must drop");
        let world = World::new(
            2,
            WorldConfig {
                faults: plan,
                recv_timeout: Some(Duration::from_millis(200)),
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(move |mut ep| {
            if ep.rank() == 0 {
                for _ in 0..sends {
                    ep.send(1, Tag(3), Bytes::from_static(b"x")).unwrap();
                }
                0
            } else {
                let mut got = 0u64;
                while ep.recv(Some(0), Some(Tag(3))).is_ok() {
                    got += 1;
                }
                got
            }
        });
        assert_eq!(out[1], expected);
    }

    #[test]
    fn cancel_interrupts_blocked_recv_without_poisoning() {
        let cancel = hdm_common::CancelToken::default();
        let world = World::new(
            2,
            WorldConfig {
                // A long deadline: the token must beat it.
                recv_timeout: Some(Duration::from_secs(30)),
                cancel: cancel.clone(),
                ..WorldConfig::default()
            },
        )
        .unwrap();
        let out = world.run(move |mut ep| {
            if ep.rank() == 0 {
                // Never send; fire the token instead of crashing.
                std::thread::sleep(Duration::from_millis(10));
                cancel.cancel("query abandoned");
                String::new()
            } else {
                let start = std::time::Instant::now();
                let err = ep.recv(Some(0), Some(crate::Tag(1))).unwrap_err();
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "cancel took the slow path"
                );
                // Interrupted, not poisoned: sibling queries sharing the
                // process must see clean endpoints.
                assert!(!ep.is_poisoned(0));
                assert!(!ep.is_poisoned(1));
                err.subsystem().to_string()
            }
        });
        assert_eq!(out[1], "cancelled");
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let world = World::new(1, WorldConfig::default()).unwrap();
        let out = world.run(|mut ep| ep.send(5, Tag(0), Bytes::new()).is_err());
        assert!(out[0]);
    }
}
