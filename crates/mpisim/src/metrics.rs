//! Per-link traffic counters feeding the cluster timing model.

use crate::Rank;
use hdm_obs::{Counter, ObsHandle};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes and message counts per directed (src, dst) link.
#[derive(Debug)]
pub struct WorldMetrics {
    size: usize,
    bytes: Vec<AtomicU64>,
    messages: Vec<AtomicU64>,
    // Registry handles are fetched once here; the send path pays one
    // relaxed atomic check when obs is disabled.
    obs: ObsHandle,
    obs_bytes: Counter,
    obs_messages: Counter,
}

impl WorldMetrics {
    pub(crate) fn new(size: usize, obs: ObsHandle) -> WorldMetrics {
        let obs_bytes = obs.counter("mpi.bytes", "");
        let obs_messages = obs.counter("mpi.messages", "");
        WorldMetrics {
            size,
            bytes: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            messages: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            obs,
            obs_bytes,
            obs_messages,
        }
    }

    pub(crate) fn record_send(&self, src: Rank, dst: Rank, bytes: u64) {
        if src < self.size && dst < self.size {
            let i = src * self.size + dst;
            if let (Some(b), Some(m)) = (self.bytes.get(i), self.messages.get(i)) {
                b.fetch_add(bytes, Ordering::Relaxed);
                m.fetch_add(1, Ordering::Relaxed);
            }
            if self.obs.is_enabled() {
                self.obs_bytes.add(bytes);
                self.obs_messages.add(1);
            }
        }
    }

    /// World size these counters cover.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Bytes sent on the directed link `src → dst`.
    pub fn bytes_on_link(&self, src: Rank, dst: Rank) -> u64 {
        if src >= self.size || dst >= self.size {
            return 0;
        }
        self.bytes
            .get(src * self.size + dst)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Messages sent on the directed link `src → dst`.
    pub fn messages_on_link(&self, src: Rank, dst: Rank) -> u64 {
        if src >= self.size || dst >= self.size {
            return 0;
        }
        self.messages
            .get(src * self.size + dst)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Total bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.messages
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The full byte matrix, row = source.
    pub fn byte_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.size)
            .map(|s| (0..self.size).map(|d| self.bytes_on_link(s, d)).collect())
            .collect()
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]
mod tests {
    use super::*;

    #[test]
    fn matrix_accumulates() {
        let m = WorldMetrics::new(3, ObsHandle::default());
        m.record_send(0, 1, 10);
        m.record_send(0, 1, 5);
        m.record_send(2, 0, 7);
        assert_eq!(m.bytes_on_link(0, 1), 15);
        assert_eq!(m.messages_on_link(0, 1), 2);
        assert_eq!(m.total_bytes(), 22);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.byte_matrix()[2][0], 7);
    }

    #[test]
    fn obs_counters_mirror_traffic_when_enabled() {
        let obs = ObsHandle::enabled_with_stride(1);
        let m = WorldMetrics::new(2, obs.clone());
        m.record_send(0, 1, 64);
        m.record_send(1, 0, 36);
        let snap = obs.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, v)| n == "mpi.bytes" && *v == 100));
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, v)| n == "mpi.messages" && *v == 2));
    }

    #[test]
    fn out_of_range_is_ignored() {
        let m = WorldMetrics::new(1, ObsHandle::default());
        m.record_send(5, 0, 10);
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.bytes_on_link(5, 0), 0);
    }
}
