//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the [Trace Event Format] JSON-object form: an object with a
//! `traceEvents` array of `M` (track-name metadata), `X` (complete
//! span), and `C` (counter sample) events. Load the file in
//! `chrome://tracing` or [Perfetto UI](https://ui.perfetto.dev).
//!
//! Output is **byte-deterministic** for a given snapshot: tracks are
//! numbered in sorted-name order and every section is explicitly
//! sorted, so two identical runs produce identical bytes.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{parse, JsonValue};
use crate::{ObsSnapshot, SampleEvent, SpanEvent};
use hdm_common::error::{HdmError, Result};
use std::collections::BTreeMap;

/// Render a snapshot as Chrome-trace JSON.
pub fn export(snap: &ObsSnapshot) -> String {
    // Track (trace row) -> tid, in sorted-name order for determinism.
    let names: std::collections::BTreeSet<&str> = snap
        .spans
        .iter()
        .map(|s| s.track.as_str())
        .chain(snap.samples.iter().map(|s| s.track.as_str()))
        .collect();
    let tids: BTreeMap<&str, u64> = names
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i as u64 + 1))
        .collect();

    let tid_of = |track: &str| tids.get(track).copied().unwrap_or(0);
    let mut events: Vec<String> = Vec::new();
    for (track, tid) in &tids {
        events.push(format!(
            r#"{{"ph":"M","pid":1,"tid":{tid},"name":"thread_name","args":{{"name":{}}}}}"#,
            escape(track)
        ));
    }

    let mut spans: Vec<&SpanEvent> = snap.spans.iter().collect();
    // Longer spans first at equal start so Chrome nests children inside.
    spans.sort_by(|a, b| {
        (
            &a.track,
            a.start_us,
            std::cmp::Reverse(a.dur_us),
            &a.name,
            a.cat,
        )
            .cmp(&(
                &b.track,
                b.start_us,
                std::cmp::Reverse(b.dur_us),
                &b.name,
                b.cat,
            ))
    });
    for s in spans {
        events.push(format!(
            r#"{{"ph":"X","pid":1,"tid":{},"ts":{},"dur":{},"cat":{},"name":{}}}"#,
            tid_of(&s.track),
            s.start_us,
            s.dur_us,
            escape(s.cat),
            escape(&s.name)
        ));
    }

    let mut samples: Vec<&SampleEvent> = snap.samples.iter().collect();
    samples.sort_by(|a, b| {
        (&a.track, &a.name, a.t_us, a.value).cmp(&(&b.track, &b.name, b.t_us, b.value))
    });
    for s in samples {
        events.push(format!(
            r#"{{"ph":"C","pid":1,"tid":{},"ts":{},"name":{},"args":{{"value":{}}}}}"#,
            tid_of(&s.track),
            s.t_us,
            escape(&s.name),
            s.value
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

/// JSON-escape a string, including quotes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn field<'a>(ev: &'a JsonValue, key: &str, n: usize) -> Result<&'a JsonValue> {
    ev.get(key)
        .ok_or_else(|| HdmError::Other(format!("trace event {n}: missing \"{key}\"")))
}

fn num_field(ev: &JsonValue, key: &str, n: usize) -> Result<f64> {
    field(ev, key, n)?
        .as_f64()
        .ok_or_else(|| HdmError::Other(format!("trace event {n}: \"{key}\" is not a number")))
}

fn str_field<'a>(ev: &'a JsonValue, key: &str, n: usize) -> Result<&'a str> {
    field(ev, key, n)?
        .as_str()
        .ok_or_else(|| HdmError::Other(format!("trace event {n}: \"{key}\" is not a string")))
}

/// Validate a Chrome-trace JSON document against the trace-event schema
/// subset this crate emits: a `traceEvents` array whose members each
/// carry `ph`/`pid`/`tid`/`name`, with the per-phase required fields
/// (`X`: `ts` + `dur`; `C`: `ts` + numeric `args.value`; `M`:
/// `args.name`). Returns the number of events.
///
/// # Errors
/// [`HdmError::Other`] describing the first schema violation.
pub fn validate_chrome_trace(src: &str) -> Result<usize> {
    let doc = parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| HdmError::Other("trace: top-level \"traceEvents\" array missing".into()))?;
    for (n, ev) in events.iter().enumerate() {
        if ev.as_obj().is_none() {
            return Err(HdmError::Other(format!("trace event {n}: not an object")));
        }
        let ph = str_field(ev, "ph", n)?;
        num_field(ev, "pid", n)?;
        num_field(ev, "tid", n)?;
        str_field(ev, "name", n)?;
        match ph {
            "X" => {
                let ts = num_field(ev, "ts", n)?;
                let dur = num_field(ev, "dur", n)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(HdmError::Other(format!("trace event {n}: negative ts/dur")));
                }
            }
            "C" => {
                num_field(ev, "ts", n)?;
                let args = field(ev, "args", n)?;
                let has_numeric = args
                    .as_obj()
                    .is_some_and(|m| m.iter().any(|(_, v)| v.as_f64().is_some()));
                if !has_numeric {
                    return Err(HdmError::Other(format!(
                        "trace event {n}: counter without numeric args"
                    )));
                }
            }
            "M" => {
                let args = field(ev, "args", n)?;
                if args.get("name").and_then(JsonValue::as_str).is_none() {
                    return Err(HdmError::Other(format!(
                        "trace event {n}: metadata without args.name"
                    )));
                }
            }
            other => {
                return Err(HdmError::Other(format!(
                    "trace event {n}: unsupported ph {other:?}"
                )));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHandle;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn export_round_trips_through_validator() {
        let obs = ObsHandle::enabled_with_stride(1);
        obs.record_span_at("driver", "job", "q1", 0, 100);
        obs.record_span_at("O0", "task", "o-task", 5, 50);
        obs.record_span_at("O0", "operator", "open \"x\"", 6, 10);
        obs.sample_at("O0", "bytes", 7, 4096);
        let json = export(&obs.snapshot());
        // 2 track rows + 3 spans + 1 counter.
        assert_eq!(validate_chrome_trace(&json).unwrap(), 6);
    }

    #[test]
    fn validator_rejects_bad_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"ph":"Z","pid":1,"tid":1,"name":"x"}]}"#
        )
        .is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":1,"name":"x","ts":1,"dur":-2}]}"#
        )
        .is_err());
        assert_eq!(validate_chrome_trace(r#"{"traceEvents":[]}"#).unwrap(), 0);
    }
}
