//! A minimal, dependency-free JSON parser.
//!
//! The workspace vendors no `serde_json`, but the Chrome-trace exporter
//! needs schema validation ([`crate::chrome::validate_chrome_trace`])
//! and its tests need to read back what was emitted. This is a strict
//! recursive-descent parser over the JSON grammar — objects, arrays,
//! strings (with escapes), numbers, booleans, null — with a depth limit
//! so malformed input cannot overflow the stack.

use hdm_common::error::{HdmError, Result};

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// [`HdmError::Other`] with a position-annotated message on any syntax
/// error.
pub fn parse(src: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> HdmError {
        HdmError::Other(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn require(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue> {
        self.require(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(members)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue> {
        self.require(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(elems));
        }
        loop {
            elems.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(elems)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // A high surrogate must pair with a following
                        // `\uXXXX` low surrogate to form one scalar.
                        let scalar = if (0xD800..0xDC00).contains(&cp) {
                            if self.eat_literal("\\u") {
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(self.err("unpaired surrogate"));
                            }
                        } else {
                            cp
                        };
                        out.push(char::from_u32(scalar).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 from the source slice:
                    // the input is a &str, so byte sequences are valid.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = (start + width).min(self.bytes.len());
                        if let Some(slice) = self.bytes.get(start..end) {
                            if let Ok(s) = std::str::from_utf8(slice) {
                                out.push_str(s);
                            }
                        }
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|s| std::str::from_utf8(s).ok())
            .unwrap_or("");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(lead: u8) -> usize {
    if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            parse("\"a\\nb\\u0041é\"").unwrap(),
            JsonValue::Str("a\nbAé".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("d"), Some(&JsonValue::Obj(vec![])));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("c"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap(),
            JsonValue::Str("😀".to_string())
        );
        assert!(parse("\"\\uD83D\"").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] garbage",
            "{\"a\" 1}",
            "\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }
}
