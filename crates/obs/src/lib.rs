#![warn(missing_docs)]

//! # hdm-obs
//!
//! Unified tracing, metrics, and profiling for the Hive-on-DataMPI
//! reproduction.
//!
//! The paper's whole evaluation rests on observability signals: phase
//! breakdowns (Fig. 1/10), communication characteristics (Fig. 2), and
//! dstat resource curves (Fig. 13). Before this crate those signals were
//! collected by four disconnected ad-hoc modules; `hdm-obs` gives every
//! layer one low-overhead instrumentation surface:
//!
//! * **Hierarchical spans** (job → phase → task → operator) recorded
//!   into a thread-safe bounded recorder, keyed by *track* (one Chrome
//!   trace row per task rank / subsystem).
//! * **A metrics registry** of named counters, gauges, and
//!   [`Histogram`](hdm_common::stats::Histogram)-backed timers, labeled
//!   by task rank / node.
//! * **A sampling resource probe** — our dstat analogue: bytes moved,
//!   queue depths, memory-in-use, sampled every
//!   [`hive.obs.sample.rate`](hdm_common::conf::KEY_OBS_SAMPLE_RATE)-th
//!   event and exported as Chrome counter tracks.
//! * **Exporters**: Chrome-trace/Perfetto JSON ([`chrome`]), a
//!   byte-deterministic plaintext summary ([`summary`]), and the shared
//!   report types ([`report`], [`probe`]) the `fig01`/`fig10`/`fig13`
//!   harnesses consume.
//!
//! Everything hangs off a cheaply-cloneable [`ObsHandle`]. When tracing
//! is disabled (the default — `hive.obs.enabled=false`), every
//! instrumented hot-path site reduces to **one relaxed atomic load**:
//! callers gate on [`ObsHandle::is_enabled`] before touching any metric
//! handle, and [`ObsHandle::span`] returns an inert guard without
//! allocating.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod report;
pub mod span;
pub mod summary;

pub use metrics::{Counter, Gauge, Timer};
pub use probe::{Resource, ResourceTrace, UsageInterval};
pub use report::{
    CollectProfile, PhaseBreakdown, SpillStats, COLLECT_SAMPLE_STRIDE, KV_HIST_BUCKET,
    TIMER_US_BUCKET,
};
pub use span::{SpanEvent, SpanGuard};

use hdm_common::conf::JobConf;
use hdm_common::error::Result;
use hdm_common::stats::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on recorded span events; further spans bump a drop counter
/// instead of growing without bound.
pub const MAX_SPANS: usize = 1 << 16;
/// Hard cap on recorded probe samples.
pub const MAX_SAMPLES: usize = 1 << 16;

/// One probe observation: a Chrome counter-track point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleEvent {
    /// Track (Chrome trace row) the sample belongs to.
    pub track: String,
    /// Counter name within the track.
    pub name: String,
    /// Microseconds since the handle's epoch.
    pub t_us: u64,
    /// Observed value.
    pub value: u64,
}

/// A point-in-time copy of everything a handle has recorded, in
/// deterministic (sorted-registry) order for the metric sections.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// Span events in recording order.
    pub spans: Vec<SpanEvent>,
    /// Spans discarded because the recorder was full.
    pub dropped_spans: u64,
    /// `(name, labels, value)` for every registered counter, sorted.
    pub counters: Vec<(String, String, u64)>,
    /// `(name, labels, value)` for every registered gauge, sorted.
    pub gauges: Vec<(String, String, i64)>,
    /// `(name, labels, histogram)` for every registered timer, sorted.
    pub timers: Vec<(String, String, Histogram)>,
    /// Probe samples in recording order.
    pub samples: Vec<SampleEvent>,
    /// Samples discarded because the probe buffer was full.
    pub dropped_samples: u64,
}

#[derive(Debug, Default)]
struct SpanStore {
    events: Vec<SpanEvent>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct SampleStore {
    events: Vec<SampleEvent>,
    dropped: u64,
}

/// Registry map keyed by `(metric name, label string)`.
type Registry<T> = Mutex<BTreeMap<(String, String), Arc<T>>>;

#[derive(Debug)]
pub(crate) struct ObsInner {
    enabled: AtomicBool,
    stride: u64,
    epoch: Instant,
    spans: Mutex<SpanStore>,
    counters: Registry<AtomicU64>,
    gauges: Registry<AtomicI64>,
    timers: Registry<Mutex<Histogram>>,
    samples: Mutex<SampleStore>,
}

/// Cheaply-cloneable handle to one observation session (typically one
/// query). All clones share the same recorder, registry, and epoch.
#[derive(Debug, Clone)]
pub struct ObsHandle {
    inner: Arc<ObsInner>,
}

impl Default for ObsHandle {
    fn default() -> ObsHandle {
        ObsHandle::disabled()
    }
}

impl ObsHandle {
    fn with_enabled(enabled: bool, stride: u64) -> ObsHandle {
        ObsHandle {
            inner: Arc::new(ObsInner {
                enabled: AtomicBool::new(enabled),
                stride: stride.max(1),
                epoch: Instant::now(),
                spans: Mutex::new(SpanStore::default()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                timers: Mutex::new(BTreeMap::new()),
                samples: Mutex::new(SampleStore::default()),
            }),
        }
    }

    /// A handle that records nothing; every instrumented site reduces to
    /// one atomic load.
    pub fn disabled() -> ObsHandle {
        ObsHandle::with_enabled(false, 64)
    }

    /// A recording handle with the given probe sampling stride.
    pub fn enabled_with_stride(stride: u64) -> ObsHandle {
        ObsHandle::with_enabled(true, stride)
    }

    /// Build a handle from the registered conf knobs
    /// (`hive.obs.enabled`, `hive.obs.sample.rate`).
    ///
    /// # Errors
    /// [`hdm_common::error::HdmError::Config`] on malformed knob values.
    pub fn from_conf(conf: &JobConf) -> Result<ObsHandle> {
        let enabled = conf.obs_enabled()?;
        let stride = conf.obs_sample_stride()?;
        Ok(ObsHandle::with_enabled(enabled, stride))
    }

    /// Whether this handle records anything. One relaxed atomic load —
    /// this is the *entire* disabled-path cost of an instrumented site.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The configured probe sampling stride.
    pub fn stride(&self) -> u64 {
        self.inner.stride
    }

    /// True on every `stride`-th event (and for the first event), so a
    /// hot loop can gate probe samples on its own monotone counter:
    /// `if obs.should_sample(n) { obs.sample(...) }`.
    #[inline]
    pub fn should_sample(&self, n: u64) -> bool {
        self.is_enabled() && n % self.inner.stride == 1 % self.inner.stride
    }

    /// Microseconds elapsed between this handle's epoch and `at`.
    pub fn micros_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.inner.epoch).as_micros() as u64
    }

    /// Open a span on `track`; the span is recorded when the returned
    /// guard drops. Inert (no allocation, no lock) when disabled.
    pub fn span(&self, track: &str, cat: &'static str, name: &str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        SpanGuard::active(self.clone(), track.to_string(), cat, name.to_string())
    }

    /// Record a span with explicit timestamps (µs since epoch). Used by
    /// instrumentation that already measured a duration, and by the
    /// deterministic exporter tests.
    pub fn record_span_at(
        &self,
        track: &str,
        cat: &'static str,
        name: &str,
        start_us: u64,
        dur_us: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push_span(SpanEvent {
            track: track.to_string(),
            cat,
            name: name.to_string(),
            start_us,
            dur_us,
        });
    }

    pub(crate) fn push_span(&self, ev: SpanEvent) {
        let mut store = self.inner.spans.lock();
        if store.events.len() < MAX_SPANS {
            store.events.push(ev);
        } else {
            store.dropped += 1;
        }
    }

    /// Fetch (registering on first use) the counter `name{labels}`.
    /// Returns a clone of the shared slot: fetch once at setup, then
    /// `add` from the hot path behind [`ObsHandle::is_enabled`].
    pub fn counter(&self, name: &str, labels: &str) -> Counter {
        let mut reg = self.inner.counters.lock();
        let slot = reg
            .entry((name.to_string(), labels.to_string()))
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter::new(Arc::clone(slot))
    }

    /// Fetch (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &str) -> Gauge {
        let mut reg = self.inner.gauges.lock();
        let slot = reg
            .entry((name.to_string(), labels.to_string()))
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge::new(Arc::clone(slot))
    }

    /// Fetch (registering on first use) the timer `name{labels}` with
    /// the given histogram bucket width (first registration wins).
    pub fn timer(&self, name: &str, labels: &str, bucket_width: NonZeroU64) -> Timer {
        let mut reg = self.inner.timers.lock();
        let slot = reg
            .entry((name.to_string(), labels.to_string()))
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::with_width(bucket_width))));
        Timer::new(Arc::clone(slot))
    }

    /// Record one probe observation at "now". No-op when disabled.
    pub fn sample(&self, track: &str, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let t_us = self.micros_since_epoch(Instant::now());
        self.sample_at(track, name, t_us, value);
    }

    /// Record one probe observation with an explicit timestamp (µs since
    /// epoch). No-op when disabled.
    pub fn sample_at(&self, track: &str, name: &str, t_us: u64, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut store = self.inner.samples.lock();
        if store.events.len() < MAX_SAMPLES {
            store.events.push(SampleEvent {
                track: track.to_string(),
                name: name.to_string(),
                t_us,
                value,
            });
        } else {
            store.dropped += 1;
        }
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> ObsSnapshot {
        let spans = self.inner.spans.lock();
        let samples = self.inner.samples.lock();
        ObsSnapshot {
            spans: spans.events.clone(),
            dropped_spans: spans.dropped,
            counters: self
                .inner
                .counters
                .lock()
                .iter()
                .map(|((n, l), v)| (n.clone(), l.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .iter()
                .map(|((n, l), v)| (n.clone(), l.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            timers: self
                .inner
                .timers
                .lock()
                .iter()
                .map(|((n, l), h)| (n.clone(), l.clone(), h.lock().clone()))
                .collect(),
            samples: samples.events.clone(),
            dropped_samples: samples.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        {
            let _g = obs.span("t", "cat", "noop");
        }
        obs.record_span_at("t", "cat", "explicit", 0, 5);
        obs.sample("t", "bytes", 7);
        let snap = obs.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.samples.is_empty());
    }

    #[test]
    fn spans_record_when_enabled() {
        let obs = ObsHandle::enabled_with_stride(1);
        {
            let _g = obs.span("O0", "task", "o-task");
        }
        obs.record_span_at("O0", "op", "open", 10, 3);
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 0);
        assert!(snap.spans.iter().any(|s| s.name == "open" && s.dur_us == 3));
    }

    #[test]
    fn metric_registry_dedupes_and_accumulates() {
        let obs = ObsHandle::enabled_with_stride(1);
        let a = obs.counter("spl.flushes", "rank=0");
        let b = obs.counter("spl.flushes", "rank=0");
        a.add(2);
        b.add(3);
        obs.gauge("mem.in.use", "rank=1").set(42);
        obs.timer("queue.wait.us", "rank=0", KV_HIST_BUCKET)
            .observe(9);
        let snap = obs.snapshot();
        assert_eq!(
            snap.counters,
            vec![("spl.flushes".to_string(), "rank=0".to_string(), 5)]
        );
        assert_eq!(snap.gauges.first().map(|g| g.2), Some(42));
        assert_eq!(snap.timers.first().map(|t| t.2.count()), Some(1));
    }

    #[test]
    fn sampling_stride_gates_probe() {
        let obs = ObsHandle::enabled_with_stride(4);
        let fired: Vec<u64> = (1..=9).filter(|&n| obs.should_sample(n)).collect();
        assert_eq!(fired, vec![1, 5, 9]);
        let every = ObsHandle::enabled_with_stride(1);
        assert!((1..=5).all(|n| every.should_sample(n)));
        assert!(!ObsHandle::disabled().should_sample(1));
    }

    #[test]
    fn span_recorder_is_bounded() {
        let obs = ObsHandle::enabled_with_stride(1);
        for i in 0..(MAX_SPANS as u64 + 10) {
            obs.record_span_at("t", "cat", "s", i, 1);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), MAX_SPANS);
        assert_eq!(snap.dropped_spans, 10);
    }

    #[test]
    fn from_conf_respects_knobs() {
        let off = ObsHandle::from_conf(&JobConf::new()).unwrap();
        assert!(!off.is_enabled());
        let on = ObsHandle::from_conf(
            &JobConf::new()
                .with(hdm_common::conf::KEY_OBS_ENABLED, "true")
                .with(hdm_common::conf::KEY_OBS_SAMPLE_RATE, 8),
        )
        .unwrap();
        assert!(on.is_enabled());
        assert_eq!(on.stride(), 8);
        assert!(ObsHandle::from_conf(
            &JobConf::new().with(hdm_common::conf::KEY_OBS_SAMPLE_RATE, 0)
        )
        .is_err());
    }
}
