//! Metric handles vended by the [`ObsHandle`](crate::ObsHandle)
//! registry.
//!
//! Handles are fetched once at task setup (taking the registry lock) and
//! then updated lock-free from hot paths — a counter `add` is one relaxed
//! `fetch_add`. Instrumented sites gate every update on
//! [`ObsHandle::is_enabled`](crate::ObsHandle::is_enabled) so the
//! disabled path never even touches the handle.

use hdm_common::stats::Histogram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone event/byte counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub(crate) fn new(slot: Arc<AtomicU64>) -> Counter {
        Counter(slot)
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, memory-in-use).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub(crate) fn new(slot: Arc<AtomicI64>) -> Gauge {
        Gauge(slot)
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value — a
    /// lock-free high-water mark (e.g. peak scheduler concurrency).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Duration distribution backed by a fixed-width [`Histogram`].
#[derive(Debug, Clone)]
pub struct Timer(Arc<Mutex<Histogram>>);

impl Timer {
    pub(crate) fn new(slot: Arc<Mutex<Histogram>>) -> Timer {
        Timer(slot)
    }

    /// Record one observation (typically microseconds).
    pub fn observe(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// Copy of the underlying histogram.
    pub fn histogram(&self) -> Histogram {
        self.0.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::ObsHandle;

    #[test]
    fn handles_share_slots_across_clones_and_threads() {
        let obs = ObsHandle::enabled_with_stride(1);
        let c = obs.counter("x", "");
        let g = obs.gauge("y", "");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.add(1);
                        g.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 400);
        assert_eq!(g.value(), 400);
        g.set(-5);
        assert_eq!(g.value(), -5);
    }

    #[test]
    fn gauge_record_max_keeps_high_water_mark() {
        let obs = ObsHandle::enabled_with_stride(1);
        let g = obs.gauge("peak", "");
        for v in [3, 1, 7, 2, 7, -9] {
            g.record_max(v);
        }
        assert_eq!(g.value(), 7);
        // Concurrent racers never lower the mark.
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let g = g.clone();
                s.spawn(move || {
                    for v in 0..100 {
                        g.record_max(t * 100 + v);
                    }
                });
            }
        });
        assert_eq!(g.value(), 399);
    }

    #[test]
    fn timer_accumulates_histogram() {
        let obs = ObsHandle::enabled_with_stride(1);
        let t = obs.timer("lat.us", "rank=0", crate::KV_HIST_BUCKET);
        for v in [1, 2, 3, 3] {
            t.observe(v);
        }
        let h = t.histogram();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Some(3));
    }
}
