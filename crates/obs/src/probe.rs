//! dstat-style resource traces (Figure 13) — the sampling resource
//! probe's export form.
//!
//! The discrete-event pipeline models log a [`UsageInterval`] for every
//! byte charged to a disk, NIC direction, or core;
//! [`ResourceTrace::from_usage`] bins them into per-second cluster-wide
//! curves — the same four panels the paper samples with `dstat`: CPU
//! utilization, disk read/write bandwidth, memory footprint, and network
//! bandwidth. (These types lived in `hdm-cluster::trace` before
//! `hdm-obs` unified the observability surface; `hdm-cluster` re-exports
//! them.) Live functional runs feed the same story through
//! [`ObsHandle::sample`](crate::ObsHandle::sample), which lands as
//! Chrome counter tracks.

use serde::{Deserialize, Serialize};

/// Which server an interval occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resource {
    /// Disk read bandwidth.
    DiskRead,
    /// Disk write bandwidth.
    DiskWrite,
    /// NIC egress.
    NetOut,
    /// NIC ingress.
    NetIn,
    /// A busy core.
    Cpu,
    /// A memory footprint change (delta at `start`).
    MemDelta,
}

/// One charged interval on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageInterval {
    /// Server kind.
    pub resource: Resource,
    /// Node index.
    pub node: usize,
    /// Interval start, seconds.
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// Bytes moved over the interval (0 for CPU).
    pub bytes: u64,
    /// Signed memory delta (only for [`Resource::MemDelta`]).
    pub mem_delta: i64,
}

/// Per-second cluster-wide resource curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceTrace {
    /// CPU utilization per second, 0..=1 (busy core-seconds / capacity).
    pub cpu_util: Vec<f64>,
    /// Disk read bytes/s summed over nodes.
    pub disk_read_bps: Vec<f64>,
    /// Disk write bytes/s summed over nodes.
    pub disk_write_bps: Vec<f64>,
    /// Network bytes/s (egress sum — ingress mirrors it).
    pub net_bps: Vec<f64>,
    /// Memory footprint in bytes at each second (cluster-wide).
    pub mem_bytes: Vec<f64>,
}

impl ResourceTrace {
    /// Bin usage intervals into 1-second buckets. `total_cores` is the
    /// cluster-wide core count used to normalize CPU utilization.
    pub fn from_usage(
        usage: &[UsageInterval],
        horizon_s: f64,
        total_cores: usize,
    ) -> ResourceTrace {
        let n = horizon_s.ceil().max(1.0) as usize;
        let mut t = ResourceTrace {
            cpu_util: vec![0.0; n],
            disk_read_bps: vec![0.0; n],
            disk_write_bps: vec![0.0; n],
            net_bps: vec![0.0; n],
            mem_bytes: vec![0.0; n],
        };
        let mut mem_deltas: Vec<(f64, i64)> = Vec::new();
        for u in usage {
            match u.resource {
                Resource::MemDelta => mem_deltas.push((u.start, u.mem_delta)),
                Resource::Cpu => {
                    spread(&mut t.cpu_util, u.start, u.end, (u.end - u.start).max(0.0))
                }
                Resource::DiskRead => spread(&mut t.disk_read_bps, u.start, u.end, u.bytes as f64),
                Resource::DiskWrite => {
                    spread(&mut t.disk_write_bps, u.start, u.end, u.bytes as f64)
                }
                Resource::NetOut => spread(&mut t.net_bps, u.start, u.end, u.bytes as f64),
                Resource::NetIn => {} // mirror of NetOut; avoid double counting
            }
        }
        // CPU: busy core-seconds per 1 s bucket / available core-seconds.
        let cores = total_cores.max(1) as f64;
        for v in &mut t.cpu_util {
            *v = (*v / cores).min(1.0);
        }
        // Memory: cumulative sum of deltas, carried forward per second.
        mem_deltas.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut level = 0f64;
        let mut deltas = mem_deltas.iter().peekable();
        for (sec, slot) in t.mem_bytes.iter_mut().enumerate() {
            let until = (sec + 1) as f64;
            while let Some(&&(at, delta)) = deltas.peek() {
                if at >= until {
                    break;
                }
                level += delta as f64;
                deltas.next();
            }
            *slot = level.max(0.0);
        }
        t
    }

    /// Number of one-second samples.
    pub fn len(&self) -> usize {
        self.cpu_util.len()
    }

    /// True iff the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.cpu_util.is_empty()
    }

    /// Mean of a series.
    pub fn mean(series: &[f64]) -> f64 {
        if series.is_empty() {
            0.0
        } else {
            series.iter().sum::<f64>() / series.len() as f64
        }
    }

    /// Peak of a series.
    pub fn peak(series: &[f64]) -> f64 {
        series.iter().copied().fold(0.0, f64::max)
    }
}

/// Distribute `amount` (bytes or busy-seconds) uniformly over
/// `[start, end)` into 1-second bins.
fn spread(bins: &mut [f64], start: f64, end: f64, amount: f64) {
    if end <= start || bins.is_empty() {
        return;
    }
    let rate = amount / (end - start);
    let first = (start.floor() as usize).min(bins.len() - 1);
    let last = ((end.ceil() as usize).max(first + 1)).min(bins.len());
    for (sec, bin) in bins.iter_mut().enumerate().take(last).skip(first) {
        let lo = (sec as f64).max(start);
        let hi = ((sec + 1) as f64).min(end);
        if hi > lo {
            *bin += rate * (hi - lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(resource: Resource, start: f64, end: f64, bytes: u64) -> UsageInterval {
        UsageInterval {
            resource,
            node: 0,
            start,
            end,
            bytes,
            mem_delta: 0,
        }
    }

    #[test]
    fn disk_bytes_conserved() {
        let usage = vec![iv(Resource::DiskRead, 0.5, 2.5, 200)];
        let t = ResourceTrace::from_usage(&usage, 3.0, 8);
        let total: f64 = t.disk_read_bps.iter().sum();
        assert!((total - 200.0).abs() < 1e-6);
        // Uniform rate of 100 B/s: middle second gets the full 100.
        assert!((t.disk_read_bps[1] - 100.0).abs() < 1e-6);
        assert!((t.disk_read_bps[0] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn cpu_normalized_by_cores() {
        let usage = vec![
            iv(Resource::Cpu, 0.0, 1.0, 0),
            iv(Resource::Cpu, 0.0, 1.0, 0),
        ];
        let t = ResourceTrace::from_usage(&usage, 1.0, 4);
        assert!((t.cpu_util[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn net_in_not_double_counted() {
        let usage = vec![
            iv(Resource::NetOut, 0.0, 1.0, 100),
            iv(Resource::NetIn, 0.0, 1.0, 100),
        ];
        let t = ResourceTrace::from_usage(&usage, 1.0, 1);
        assert!((t.net_bps[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_is_cumulative() {
        let usage = vec![
            UsageInterval {
                resource: Resource::MemDelta,
                node: 0,
                start: 0.2,
                end: 0.2,
                bytes: 0,
                mem_delta: 1000,
            },
            UsageInterval {
                resource: Resource::MemDelta,
                node: 0,
                start: 2.1,
                end: 2.1,
                bytes: 0,
                mem_delta: -400,
            },
        ];
        let t = ResourceTrace::from_usage(&usage, 4.0, 1);
        assert_eq!(t.mem_bytes, vec![1000.0, 1000.0, 600.0, 600.0]);
    }

    #[test]
    fn mean_and_peak() {
        assert_eq!(ResourceTrace::mean(&[1.0, 3.0]), 2.0);
        assert_eq!(ResourceTrace::peak(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(ResourceTrace::mean(&[]), 0.0);
    }
}
