//! Shared report building blocks.
//!
//! Before `hdm-obs`, `datampi/src/report.rs` and `mapred/src/report.rs`
//! each carried their own copy of the collect-side profile (record
//! count, sampled collect-event sequence, KV-size histogram — the
//! Figure 2 signals), their own spill tally, and their own
//! `KV_HIST_BUCKET` constant, while the phase breakdown of Figures 1/10
//! lived in `hdm-cluster`. This module is the single definition all of
//! them now share.

use hdm_common::stats::Histogram;
use std::num::NonZeroU64;
use std::time::{Duration, Instant};

/// Bucket width (bytes) for key-value wire-size histograms, shared by
/// both engines so Figure 2(c)/(d) compares like with like.
pub const KV_HIST_BUCKET: NonZeroU64 = match NonZeroU64::new(2) {
    Some(w) => w,
    None => NonZeroU64::MIN, // unreachable: 2 != 0
};

/// Every Nth collected record logs a `(elapsed, records)` collect event
/// — the Figure 2(a) time-sequence signal. Shared by both engines.
pub const COLLECT_SAMPLE_STRIDE: u64 = 64;

/// Default bucket width (µs) for latency timers registered on the
/// shuffle path (queue-wait, sync-wait).
pub const TIMER_US_BUCKET: NonZeroU64 = match NonZeroU64::new(64) {
    Some(w) => w,
    None => NonZeroU64::MIN, // unreachable: 64 != 0
};

/// Collect-side profile of one producer task (a DataMPI O task or a
/// Hadoop map task): what `OContext::send` / `MapContext::collect` see.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectProfile {
    /// Records collected.
    pub records: u64,
    /// Sampled `(elapsed-since-job-start, records-so-far)` sequence,
    /// one entry per [`COLLECT_SAMPLE_STRIDE`] records.
    pub collect_events: Vec<(Duration, u64)>,
    /// Wire-size distribution of the collected key-value pairs.
    pub kv_sizes: Histogram,
}

impl CollectProfile {
    /// An empty profile.
    pub fn new() -> CollectProfile {
        CollectProfile {
            records: 0,
            collect_events: Vec::new(),
            kv_sizes: Histogram::with_width(KV_HIST_BUCKET),
        }
    }

    /// Account one collected record of `wire_size` bytes. Reads the
    /// clock only on the sampled (every
    /// [`COLLECT_SAMPLE_STRIDE`]-th) records, so the per-record cost
    /// stays a few arithmetic ops.
    #[inline]
    pub fn record_kv(&mut self, wire_size: u64, job_start: Instant) {
        self.records += 1;
        self.kv_sizes.record(wire_size);
        if self.records % COLLECT_SAMPLE_STRIDE == 1 {
            self.collect_events
                .push((job_start.elapsed(), self.records));
        }
    }
}

impl Default for CollectProfile {
    fn default() -> CollectProfile {
        CollectProfile::new()
    }
}

/// Spill accounting of one consumer task (a DataMPI A task's receive
/// cache or a Hadoop map task's sort buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Number of spill events.
    pub spills: u64,
    /// Total bytes spilled.
    pub spill_bytes: u64,
}

impl SpillStats {
    /// Account one spill of `bytes`.
    #[inline]
    pub fn record_spill(&mut self, bytes: u64) {
        self.spills += 1;
        self.spill_bytes += bytes;
    }
}

/// The paper's Figure 1 / Figure 10 decomposition of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    /// Submission → first task running (job init + launch latency).
    pub startup: f64,
    /// The Map-Shuffle phase: first map/O start → all intermediate data
    /// available reduce-side (copy phase in Hadoop, O phase in DataMPI).
    pub map_shuffle: f64,
    /// Everything after: merge, reduce, output ("others").
    pub others: f64,
}

impl PhaseBreakdown {
    /// Total job time.
    pub fn total(&self) -> f64 {
        self.startup + self.map_shuffle + self.others
    }

    /// `(startup, map_shuffle, others)` as fractions of the total — the
    /// Figure 1 "MS share" form. All zeros for an empty breakdown.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.startup / total,
            self.map_shuffle / total,
            self.others / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_profile_samples_on_stride() {
        let start = Instant::now();
        let mut p = CollectProfile::new();
        for _ in 0..(2 * COLLECT_SAMPLE_STRIDE) {
            p.record_kv(32, start);
        }
        assert_eq!(p.records, 2 * COLLECT_SAMPLE_STRIDE);
        // Records 1 and 65 are sampled.
        assert_eq!(p.collect_events.len(), 2);
        assert_eq!(p.collect_events[0].1, 1);
        assert_eq!(p.collect_events[1].1, COLLECT_SAMPLE_STRIDE + 1);
        assert_eq!(p.kv_sizes.count(), 2 * COLLECT_SAMPLE_STRIDE);
        assert_eq!(p.kv_sizes.mode_bucket(), Some(32));
    }

    #[test]
    fn spill_stats_accumulate() {
        let mut s = SpillStats::default();
        s.record_spill(100);
        s.record_spill(50);
        assert_eq!(s.spills, 2);
        assert_eq!(s.spill_bytes, 150);
    }

    #[test]
    fn breakdown_total_and_shares() {
        let b = PhaseBreakdown {
            startup: 1.0,
            map_shuffle: 5.0,
            others: 2.0,
        };
        assert!((b.total() - 8.0).abs() < 1e-12);
        let (s, ms, o) = b.shares();
        assert!((s - 0.125).abs() < 1e-12);
        assert!((ms - 0.625).abs() < 1e-12);
        assert!((o - 0.25).abs() < 1e-12);
        let zero = PhaseBreakdown {
            startup: 0.0,
            map_shuffle: 0.0,
            others: 0.0,
        };
        assert_eq!(zero.shares(), (0.0, 0.0, 0.0));
    }
}
