//! Hierarchical span events and the RAII guard that records them.
//!
//! A span is one horizontal bar in the Chrome trace: it lives on a
//! *track* (one trace row — a task rank like `O3`, or a subsystem like
//! `driver`), carries a *category* (`job`, `phase`, `task`, `operator`),
//! and covers `[start_us, start_us + dur_us)` relative to the owning
//! [`ObsHandle`](crate::ObsHandle)'s epoch. Nesting is positional, as in
//! Chrome's trace viewer: a span whose interval is contained in another
//! span on the same track renders (and means) "child of".

use crate::ObsHandle;
use std::time::Instant;

/// One completed span, ready for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace row this span belongs to.
    pub track: String,
    /// Hierarchy level: `job`, `phase`, `task`, or `operator`.
    pub cat: &'static str,
    /// Human-readable span name.
    pub name: String,
    /// Start, microseconds since the handle's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct ActiveSpan {
    obs: ObsHandle,
    track: String,
    cat: &'static str,
    name: String,
    start: Instant,
}

/// RAII guard returned by [`ObsHandle::span`]: records the span when
/// dropped. Inert (free beyond the construction check) when the handle
/// is disabled.
#[derive(Debug)]
#[must_use = "a span covers the guard's lifetime; dropping it immediately records an empty span"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    pub(crate) fn inert() -> SpanGuard {
        SpanGuard(None)
    }

    pub(crate) fn active(
        obs: ObsHandle,
        track: String,
        cat: &'static str,
        name: String,
    ) -> SpanGuard {
        SpanGuard(Some(ActiveSpan {
            obs,
            track,
            cat,
            name,
            start: Instant::now(),
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let start_us = active.obs.micros_since_epoch(active.start);
            let dur_us = active.start.elapsed().as_micros() as u64;
            active.obs.push_span(SpanEvent {
                track: active.track,
                cat: active.cat,
                name: active.name,
                start_us,
                dur_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop_with_monotone_interval() {
        let obs = ObsHandle::enabled_with_stride(1);
        {
            let _outer = obs.span("T", "task", "outer");
            let _inner = obs.span("T", "operator", "inner");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Guards drop inner-first, so "inner" is recorded before "outer"
        // and its interval is contained in the outer one.
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }
}
