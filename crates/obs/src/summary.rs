//! Deterministic plaintext summary export.
//!
//! A human-readable rollup of one snapshot, written next to the Chrome
//! trace. The layout uses only recorded values (never the wall clock)
//! and sorts every section, so two snapshots with identical contents
//! render to identical bytes — CI diffs the output directly.

use crate::ObsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a snapshot as plaintext.
pub fn render(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== hdm-obs summary ==");

    // Spans rolled up per (track, cat, name).
    let mut rollup: BTreeMap<(&str, &str, &str), (u64, u64, u64)> = BTreeMap::new();
    for s in &snap.spans {
        let slot = rollup
            .entry((s.track.as_str(), s.cat, s.name.as_str()))
            .or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += s.dur_us;
        slot.2 = slot.2.max(s.dur_us);
    }
    let _ = writeln!(
        out,
        "spans: {} recorded, {} dropped",
        snap.spans.len(),
        snap.dropped_spans
    );
    for ((track, cat, name), (count, total_us, max_us)) in &rollup {
        let _ = writeln!(
            out,
            "  {track} {cat} {name}: n={count} total_us={total_us} max_us={max_us}"
        );
    }

    let _ = writeln!(out, "counters: {}", snap.counters.len());
    for (name, labels, value) in &snap.counters {
        let _ = writeln!(out, "  {name}{{{labels}}} = {value}");
    }

    let _ = writeln!(out, "gauges: {}", snap.gauges.len());
    for (name, labels, value) in &snap.gauges {
        let _ = writeln!(out, "  {name}{{{labels}}} = {value}");
    }

    let _ = writeln!(out, "timers: {}", snap.timers.len());
    for (name, labels, hist) in &snap.timers {
        let _ = writeln!(
            out,
            "  {name}{{{labels}}}: n={} min={} max={} mode_bucket={}",
            hist.count(),
            hist.min()
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            hist.max()
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            hist.mode_bucket()
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        );
    }

    // Samples rolled up per (track, name).
    let mut probes: BTreeMap<(&str, &str), (u64, u64, u64)> = BTreeMap::new();
    for s in &snap.samples {
        let slot = probes
            .entry((s.track.as_str(), s.name.as_str()))
            .or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 = slot.1.max(s.value);
        slot.2 = s.value; // recording order: ends at the last sample
    }
    let _ = writeln!(
        out,
        "samples: {} recorded, {} dropped",
        snap.samples.len(),
        snap.dropped_samples
    );
    for ((track, name), (count, max, last)) in &probes {
        let _ = writeln!(out, "  {track} {name}: n={count} max={max} last={last}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHandle;

    fn populated() -> ObsHandle {
        let obs = ObsHandle::enabled_with_stride(1);
        obs.record_span_at("driver", "job", "q", 0, 80);
        obs.record_span_at("O0", "task", "o-task", 2, 40);
        obs.record_span_at("O0", "task", "o-task", 50, 20);
        obs.counter("spl.flushes", "rank=0").add(3);
        obs.gauge("mem.in.use", "").set(1024);
        obs.timer("wait.us", "", crate::KV_HIST_BUCKET).observe(6);
        obs.sample_at("O0", "bytes", 5, 100);
        obs.sample_at("O0", "bytes", 9, 50);
        obs
    }

    #[test]
    fn summary_rolls_up_and_sorts() {
        let text = render(&populated().snapshot());
        assert!(text.contains("spans: 3 recorded, 0 dropped"));
        assert!(text.contains("O0 task o-task: n=2 total_us=60 max_us=40"));
        assert!(text.contains("spl.flushes{rank=0} = 3"));
        assert!(text.contains("mem.in.use{} = 1024"));
        assert!(text.contains("wait.us{}: n=1 min=6 max=6 mode_bucket=6"));
        assert!(text.contains("O0 bytes: n=2 max=100 last=50"));
    }

    #[test]
    fn identical_snapshots_render_identical_bytes() {
        let a = render(&populated().snapshot());
        let b = render(&populated().snapshot());
        assert_eq!(a, b);
    }
}
