//! Exporter guarantees: schema-valid Chrome traces, byte-deterministic
//! summaries, and balanced span nesting under concurrent O/A tasks.

use hdm_obs::{chrome, json::JsonValue, summary, ObsHandle, SpanEvent};

/// Replay the same deterministic workload into a fresh handle.
fn replay() -> ObsHandle {
    let obs = ObsHandle::enabled_with_stride(4);
    obs.record_span_at("driver", "job", "query-1", 0, 10_000);
    for rank in 0..3u64 {
        let track = format!("O{rank}");
        obs.record_span_at(&track, "task", "o-task", 100 + rank, 8_000);
        obs.record_span_at(&track, "operator", "open", 150 + rank, 200);
        obs.record_span_at(&track, "operator", "process", 400 + rank, 7_000);
        obs.record_span_at(&track, "operator", "close", 7_500 + rank, 300);
        obs.sample_at(&track, "bytes_sent", 500 + rank, 4096 * (rank + 1));
        obs.counter("spl.flushes", &format!("rank={rank}"))
            .add(rank + 1);
    }
    obs.gauge("mem.in.use", "rank=0").set(1 << 20);
    obs.timer("queue.wait.us", "rank=0", hdm_obs::KV_HIST_BUCKET)
        .observe(12);
    obs
}

#[test]
fn chrome_trace_validates_against_schema() {
    let trace = chrome::export(&replay().snapshot());
    let n = chrome::validate_chrome_trace(&trace).expect("schema-valid trace");
    // 4 tracks (driver + O0..O2) + 13 spans + 3 counter samples.
    assert_eq!(n, 20);

    // Cross-check the structure the validator summarizes: every event's
    // tid maps to a declared thread_name metadata row.
    let doc = hdm_obs::json::parse(&trace).unwrap();
    let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
    let declared: Vec<f64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .filter_map(|e| e.get("tid").and_then(JsonValue::as_f64))
        .collect();
    for ev in events {
        let tid = ev.get("tid").and_then(JsonValue::as_f64).unwrap();
        assert!(declared.contains(&tid), "undeclared tid {tid}");
    }
}

#[test]
fn exports_are_byte_deterministic_across_identical_runs() {
    let (a, b) = (replay().snapshot(), replay().snapshot());
    assert_eq!(summary::render(&a), summary::render(&b));
    assert_eq!(chrome::export(&a), chrome::export(&b));
}

/// On one track, spans recorded by nested guards must form a balanced
/// hierarchy: sorted by (start, longest-first), every span either
/// contains the next one or ends before it starts — no partial overlap.
fn assert_balanced(track: &str, mut spans: Vec<&SpanEvent>) {
    spans.sort_by_key(|s| (s.start_us, std::cmp::Reverse(s.dur_us)));
    let mut stack: Vec<(u64, u64)> = Vec::new(); // (start, end)
    for s in &spans {
        let (start, end) = (s.start_us, s.start_us + s.dur_us);
        while let Some(&(_, top_end)) = stack.last() {
            if start >= top_end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_start, top_end)) = stack.last() {
            assert!(
                start >= top_start && end <= top_end,
                "span {}..{} on {track} partially overlaps enclosing {}..{}",
                start,
                end,
                top_start,
                top_end
            );
        }
        stack.push((start, end));
    }
}

#[test]
fn span_nesting_is_balanced_under_concurrent_o_and_a_tasks() {
    let obs = ObsHandle::enabled_with_stride(1);
    std::thread::scope(|s| {
        for rank in 0..4u64 {
            let obs = obs.clone();
            let track = if rank % 2 == 0 {
                format!("O{}", rank / 2)
            } else {
                format!("A{}", rank / 2)
            };
            s.spawn(move || {
                let _task = obs.span(&track, "task", "task");
                for op in 0..8 {
                    let _outer = obs.span(&track, "operator", &format!("op{op}"));
                    let _inner = obs.span(&track, "operator", "step");
                    std::hint::black_box(op);
                }
            });
        }
    });
    let snap = obs.snapshot();
    assert_eq!(snap.dropped_spans, 0);
    // 4 tasks × (1 task span + 16 operator spans).
    assert_eq!(snap.spans.len(), 4 * 17);
    for track in ["O0", "O1", "A0", "A1"] {
        let spans: Vec<&SpanEvent> = snap.spans.iter().filter(|s| s.track == track).collect();
        assert_eq!(spans.len(), 17, "track {track}");
        assert_balanced(track, spans);
    }
    // The concurrent trace still exports to schema-valid JSON.
    chrome::validate_chrome_trace(&chrome::export(&snap)).unwrap();
}

/// Regression for the driver's scheduler tracks: each stage owns a
/// `stage{id}` track carrying `sched.wait` → `sched.run` ⊃ the stage's
/// phase span. Stages scheduled concurrently must still yield balanced
/// per-track hierarchies and a schema-valid export — concurrency may
/// interleave tracks, never spans *within* a stage's track.
#[test]
fn concurrent_stage_tracks_stay_balanced_and_exportable() {
    let obs = ObsHandle::enabled_with_stride(1);
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for stage in 0..6u64 {
            let obs = obs.clone();
            s.spawn(move || {
                let track = format!("stage{stage}");
                // As in the driver: the stage became ready in the past,
                // waited until now, and its run span opens from now on.
                let now = obs.micros_since_epoch(t0);
                let ready = now.saturating_sub(40 + stage);
                obs.record_span_at(&track, "sched", "sched.wait", ready, now - ready);
                let _run = obs.span(&track, "sched", "sched.run");
                let _phase = obs.span(&track, "phase", "map-only");
                std::hint::black_box(stage);
            });
        }
    });
    let snap = obs.snapshot();
    assert_eq!(snap.dropped_spans, 0);
    assert_eq!(snap.spans.len(), 6 * 3);
    for stage in 0..6 {
        let track = format!("stage{stage}");
        let spans: Vec<&SpanEvent> = snap.spans.iter().filter(|s| s.track == track).collect();
        assert_eq!(spans.len(), 3, "track {track}");
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"sched.wait"), "track {track}: {names:?}");
        assert!(names.contains(&"sched.run"), "track {track}: {names:?}");
        assert_balanced(&track, spans);
    }
    chrome::validate_chrome_trace(&chrome::export(&snap)).unwrap();
}
