//! Bounded admission control with per-tenant fair queueing.
//!
//! HiveServer2 guards its executor pool with a workload manager: a
//! bounded wait queue in front of a fixed number of concurrently running
//! queries, with fairness across resource plans so one chatty tenant
//! cannot starve everyone else. [`AdmissionGate`] reproduces that shape:
//!
//! * at most `pool` queries hold a [`Permit`] at once;
//! * at most `queue_max` queries wait; arrivals beyond the bound are
//!   **rejected** immediately (fail fast beats building an unbounded
//!   backlog);
//! * waiting queries are dispatched **round-robin across tenants**, FIFO
//!   within a tenant — so a waiting query from a starved tenant runs
//!   before a later arrival from a hot tenant, while a single tenant's
//!   own queries keep their submission order.

use hdm_common::error::{HdmError, Result};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar};

#[derive(Debug, Default)]
struct GateState {
    /// Permits currently held.
    running: usize,
    /// Tickets currently parked in a tenant queue.
    waiting: usize,
    /// Monotonic ticket source.
    next_ticket: u64,
    /// FIFO of waiting tickets per tenant.
    queues: BTreeMap<String, VecDeque<u64>>,
    /// Round-robin dispatch order over tenants with waiting tickets.
    rr: VecDeque<String>,
    /// Tickets dispatched but not yet observed by their waiter.
    granted: BTreeSet<u64>,
}

impl GateState {
    /// Grant permits while capacity allows, rotating across tenants.
    /// Caller must notify the gate condvar after any call that grants.
    fn dispatch(&mut self, pool: usize) {
        while self.running < pool {
            let Some(tenant) = self.rr.pop_front() else {
                break;
            };
            let Some(queue) = self.queues.get_mut(&tenant) else {
                continue;
            };
            let Some(ticket) = queue.pop_front() else {
                continue;
            };
            if !queue.is_empty() {
                // The tenant rotates to the *back*: its next query waits
                // behind every other tenant that has work queued.
                self.rr.push_back(tenant);
            }
            self.waiting -= 1;
            self.running += 1;
            self.granted.insert(ticket);
        }
    }

    /// Remove a ticket that gave up before being granted.
    fn abandon(&mut self, tenant: &str, ticket: u64) {
        if let Some(queue) = self.queues.get_mut(tenant) {
            if let Some(pos) = queue.iter().position(|t| *t == ticket) {
                queue.remove(pos);
                self.waiting -= 1;
            }
            if queue.is_empty() {
                self.rr.retain(|t| t != tenant);
            }
        }
    }
}

#[derive(Debug)]
struct GateShared {
    pool: usize,
    queue_max: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

/// The admission gate: see the module docs for the policy.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<GateShared>,
}

/// Outcome bookkeeping of a successful admission.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<GateShared>,
    /// Whether this query had to wait in the queue before dispatch.
    waited: bool,
    /// Queue depth observed at arrival (before this query enqueued).
    depth_at_arrival: usize,
    released: bool,
}

impl Permit {
    /// True iff the query was parked in the wait queue before running.
    pub fn waited(&self) -> bool {
        self.waited
    }

    /// How many queries were already waiting when this one arrived.
    pub fn depth_at_arrival(&self) -> usize {
        self.depth_at_arrival
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let mut state = self.gate.state.lock();
        state.running = state.running.saturating_sub(1);
        state.dispatch(self.gate.pool);
        self.gate.cv.notify_all();
    }
}

impl AdmissionGate {
    /// A gate running at most `pool` queries with at most `queue_max`
    /// waiting.
    pub fn new(pool: usize, queue_max: usize) -> AdmissionGate {
        AdmissionGate {
            inner: Arc::new(GateShared {
                pool: pool.max(1),
                queue_max: queue_max.max(1),
                state: Mutex::new(GateState::default()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Number of queries currently waiting for admission.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().waiting
    }

    /// Number of queries currently running under a permit.
    pub fn running(&self) -> usize {
        self.inner.state.lock().running
    }

    /// Block until this query may run (fair-queued across tenants), or
    /// reject immediately when the wait queue is full.
    ///
    /// # Errors
    /// [`HdmError::Other`] when `queue_max` queries are already waiting.
    pub fn admit(&self, tenant: &str) -> Result<Permit> {
        let shared = &self.inner;
        let mut state = shared.state.lock();
        let depth_at_arrival = state.waiting;
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if state.queues.get(tenant).is_none_or(|q| q.is_empty()) {
            state.rr.push_back(tenant.to_string());
        }
        state
            .queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(ticket);
        state.waiting += 1;
        state.dispatch(shared.pool);
        if state.granted.remove(&ticket) {
            return Ok(Permit {
                gate: Arc::clone(shared),
                waited: false,
                depth_at_arrival,
                released: false,
            });
        }
        // The query must wait; enforce the queue bound on waiters only.
        if state.waiting > shared.queue_max {
            state.abandon(tenant, ticket);
            return Err(HdmError::Other(format!(
                "admission rejected for tenant {tenant:?}: \
                 {} queries already waiting (hive.server.queue.max = {})",
                shared.queue_max, shared.queue_max
            )));
        }
        loop {
            // hdm-allow(blocking-under-lock): condvar wait — the guard is released while parked and reacquired on wake
            state = match shared.cv.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if state.granted.remove(&ticket) {
                return Ok(Permit {
                    gate: Arc::clone(shared),
                    waited: true,
                    depth_at_arrival,
                    released: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_bound_is_respected_under_contention() {
        let gate = AdmissionGate::new(3, 64);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let (gate, live, peak) = (gate.clone(), live.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let permit = gate.admit("t").unwrap();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.queue_depth(), 0);
    }

    #[test]
    fn starved_tenant_dispatches_before_hot_tenants_later_arrival() {
        // pool=1: one query runs, the rest queue. While the first "hot"
        // query runs, hot enqueues a second query, then "starved"
        // enqueues one, then hot a third. Round-robin must dispatch
        // starved's single query before hot's third arrival.
        let gate = AdmissionGate::new(1, 64);
        let first = gate.admit("hot").unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (tenant, tag, delay_ms) in [
            ("hot", "hot-2", 0u64),
            ("starved", "starved-1", 20),
            ("hot", "hot-3", 40),
        ] {
            let (gate, order) = (gate.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                let permit = gate.admit(tenant).unwrap();
                order.lock().push(tag);
                drop(permit);
            }));
        }
        // Let all three park in the queue before releasing the runner.
        while gate.queue_depth() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().clone();
        let pos = |tag: &str| order.iter().position(|t| *t == tag).unwrap();
        assert!(
            pos("starved-1") < pos("hot-3"),
            "starved tenant must beat the hot tenant's later arrival: {order:?}"
        );
    }

    #[test]
    fn queue_bound_rejects_excess_arrivals() {
        let gate = AdmissionGate::new(1, 1);
        let running = gate.admit("a").unwrap();
        let parked = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.admit("a").map(drop))
        };
        while gate.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue holds 1 waiter already: the third arrival is rejected.
        let err = gate.admit("b").unwrap_err();
        assert!(err.message().contains("admission rejected"), "{err}");
        drop(running);
        parked.join().unwrap().unwrap();
    }

    #[test]
    fn waited_flag_reflects_queueing() {
        let gate = AdmissionGate::new(1, 8);
        let p1 = gate.admit("a").unwrap();
        assert!(!p1.waited());
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                let p = gate.admit("a").unwrap();
                let waited = p.waited();
                drop(p);
                waited
            })
        };
        while gate.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(p1);
        assert!(waiter.join().unwrap());
    }
}
