//! Bounded admission control with per-tenant fair queueing.
//!
//! HiveServer2 guards its executor pool with a workload manager: a
//! bounded wait queue in front of a fixed number of concurrently running
//! queries, with fairness across resource plans so one chatty tenant
//! cannot starve everyone else. [`AdmissionGate`] reproduces that shape:
//!
//! * at most `pool` queries hold a [`Permit`] at once;
//! * at most `queue_max` queries wait; arrivals beyond the bound are
//!   **rejected** immediately (fail fast beats building an unbounded
//!   backlog);
//! * waiting queries are dispatched **round-robin across tenants**, FIFO
//!   within a tenant — so a waiting query from a starved tenant runs
//!   before a later arrival from a hot tenant, while a single tenant's
//!   own queries keep their submission order.

use hdm_common::error::{HdmError, Result};
use hdm_common::CancelToken;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct GateState {
    /// Permits currently held.
    running: usize,
    /// Tickets currently parked in a tenant queue.
    waiting: usize,
    /// Monotonic ticket source.
    next_ticket: u64,
    /// FIFO of waiting tickets per tenant.
    queues: BTreeMap<String, VecDeque<u64>>,
    /// Round-robin dispatch order over tenants with waiting tickets.
    rr: VecDeque<String>,
    /// Tickets dispatched but not yet observed by their waiter.
    granted: BTreeSet<u64>,
    /// Shutdown phase 1: new arrivals are rejected; parked waiters keep
    /// draining normally.
    closing: bool,
    /// Shutdown phase 2 (drain window exceeded): every remaining waiter
    /// is being rejected. A permit dropped now must NOT re-dispatch —
    /// a grant handed to a waiter that bails would leak its running
    /// slot and wedge the gate just short of idle.
    expelled: bool,
}

impl GateState {
    /// Grant permits while capacity allows, rotating across tenants.
    /// Caller must notify the gate condvar after any call that grants.
    fn dispatch(&mut self, pool: usize) {
        while self.running < pool {
            let Some(tenant) = self.rr.pop_front() else {
                break;
            };
            let Some(queue) = self.queues.get_mut(&tenant) else {
                continue;
            };
            let Some(ticket) = queue.pop_front() else {
                continue;
            };
            if !queue.is_empty() {
                // The tenant rotates to the *back*: its next query waits
                // behind every other tenant that has work queued.
                self.rr.push_back(tenant);
            }
            self.waiting -= 1;
            self.running += 1;
            self.granted.insert(ticket);
        }
    }

    /// Remove a ticket that gave up before being granted.
    fn abandon(&mut self, tenant: &str, ticket: u64) {
        if let Some(queue) = self.queues.get_mut(tenant) {
            if let Some(pos) = queue.iter().position(|t| *t == ticket) {
                queue.remove(pos);
                self.waiting -= 1;
            }
            if queue.is_empty() {
                self.rr.retain(|t| t != tenant);
            }
        }
    }
}

#[derive(Debug)]
struct GateShared {
    pool: usize,
    queue_max: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

/// The admission gate: see the module docs for the policy.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<GateShared>,
}

/// Outcome bookkeeping of a successful admission.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<GateShared>,
    /// Whether this query had to wait in the queue before dispatch.
    waited: bool,
    /// Queue depth observed at arrival (before this query enqueued).
    depth_at_arrival: usize,
    released: bool,
}

impl Permit {
    /// True iff the query was parked in the wait queue before running.
    pub fn waited(&self) -> bool {
        self.waited
    }

    /// How many queries were already waiting when this one arrived.
    pub fn depth_at_arrival(&self) -> usize {
        self.depth_at_arrival
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let mut state = self.gate.state.lock();
        state.running = state.running.saturating_sub(1);
        // Once waiters are being expelled, a freed slot must not be
        // re-dispatched: the grant would land on a waiter that is about
        // to reject itself, leaking the running slot forever and leaving
        // the gate permanently one short of idle.
        if !state.expelled {
            state.dispatch(self.gate.pool);
        }
        self.gate.cv.notify_all();
    }
}

impl AdmissionGate {
    /// A gate running at most `pool` queries with at most `queue_max`
    /// waiting.
    pub fn new(pool: usize, queue_max: usize) -> AdmissionGate {
        AdmissionGate {
            inner: Arc::new(GateShared {
                pool: pool.max(1),
                queue_max: queue_max.max(1),
                state: Mutex::new(GateState::default()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Number of queries currently waiting for admission.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().waiting
    }

    /// Number of queries currently running under a permit.
    pub fn running(&self) -> usize {
        self.inner.state.lock().running
    }

    /// Block until this query may run (fair-queued across tenants), or
    /// reject immediately when the wait queue is full.
    ///
    /// # Errors
    /// [`HdmError::Other`] when `queue_max` queries are already waiting;
    /// [`HdmError::Cancelled`] when the gate is closing.
    pub fn admit(&self, tenant: &str) -> Result<Permit> {
        self.admit_cancellable(tenant, &CancelToken::default())
    }

    /// [`AdmissionGate::admit`] bounded by a cancellation token: a query
    /// whose token fires while parked in the wait queue gives its ticket
    /// back and returns `Cancelled` instead of waiting for a permit it
    /// no longer wants.
    ///
    /// # Errors
    /// As [`AdmissionGate::admit`], plus [`HdmError::Cancelled`] when
    /// `cancel` fires mid-wait (or the gate expels its waiters).
    pub fn admit_cancellable(&self, tenant: &str, cancel: &CancelToken) -> Result<Permit> {
        let shared = &self.inner;
        let mut state = shared.state.lock();
        if state.closing {
            return Err(HdmError::Cancelled(
                "admission closed (server shutting down)".to_string(),
            ));
        }
        let depth_at_arrival = state.waiting;
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if state.queues.get(tenant).is_none_or(|q| q.is_empty()) {
            state.rr.push_back(tenant.to_string());
        }
        state
            .queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(ticket);
        state.waiting += 1;
        state.dispatch(shared.pool);
        if state.granted.remove(&ticket) {
            return Ok(Permit {
                gate: Arc::clone(shared),
                waited: false,
                depth_at_arrival,
                released: false,
            });
        }
        // The query must wait; enforce the queue bound on waiters only.
        if state.waiting > shared.queue_max {
            state.abandon(tenant, ticket);
            return Err(HdmError::Other(format!(
                "admission rejected for tenant {tenant:?}: \
                 {} queries already waiting (hive.server.queue.max = {})",
                shared.queue_max, shared.queue_max
            )));
        }
        loop {
            // The short timeout doubles as the cancellation poll period
            // for parked waiters (queued queries hold no thread that
            // could poll the token otherwise).
            // hdm-allow(blocking-under-lock): condvar wait — the guard is released while parked and reacquired on wake
            state = match shared.cv.wait_timeout(state, Duration::from_millis(2)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
            if state.granted.remove(&ticket) {
                return Ok(Permit {
                    gate: Arc::clone(shared),
                    waited: true,
                    depth_at_arrival,
                    released: false,
                });
            }
            if cancel.is_cancelled() || state.expelled {
                // The grant check above ran under this same lock, so the
                // ticket is provably still queued (not granted): abandon
                // cleanly — no running slot was taken on our behalf.
                state.abandon(tenant, ticket);
                return Err(if cancel.is_cancelled() {
                    cancel.as_error()
                } else {
                    HdmError::Cancelled(
                        "admission wait expelled (server drain window exceeded)".to_string(),
                    )
                });
            }
        }
    }

    /// Shutdown phase 1: reject new arrivals. Parked waiters keep
    /// draining through the pool normally.
    pub fn close(&self) {
        self.inner.state.lock().closing = true;
        self.inner.cv.notify_all();
    }

    /// Whether [`AdmissionGate::close`] was called.
    pub fn is_closing(&self) -> bool {
        self.inner.state.lock().closing
    }

    /// Shutdown phase 2: reject every parked waiter. Returns how many
    /// waiters were expelled. From this point a dropped permit no longer
    /// re-dispatches (see [`Permit`]'s drop).
    pub fn expel_waiters(&self) -> usize {
        let mut state = self.inner.state.lock();
        state.closing = true;
        state.expelled = true;
        let expelled = state.waiting;
        self.inner.cv.notify_all();
        expelled
    }

    /// Block until the gate is idle (nothing running, nothing waiting)
    /// or `timeout` elapses. Returns whether idle was reached.
    pub fn await_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let shared = &self.inner;
        let mut state = shared.state.lock();
        while state.running > 0 || state.waiting > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let step = left.min(Duration::from_millis(5));
            // hdm-allow(blocking-under-lock): condvar wait — the guard is released while parked and reacquired on wake
            state = match shared.cv.wait_timeout(state, step) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_bound_is_respected_under_contention() {
        let gate = AdmissionGate::new(3, 64);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let (gate, live, peak) = (gate.clone(), live.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let permit = gate.admit("t").unwrap();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.queue_depth(), 0);
    }

    #[test]
    fn starved_tenant_dispatches_before_hot_tenants_later_arrival() {
        // pool=1: one query runs, the rest queue. While the first "hot"
        // query runs, hot enqueues a second query, then "starved"
        // enqueues one, then hot a third. Round-robin must dispatch
        // starved's single query before hot's third arrival.
        let gate = AdmissionGate::new(1, 64);
        let first = gate.admit("hot").unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (tenant, tag, delay_ms) in [
            ("hot", "hot-2", 0u64),
            ("starved", "starved-1", 20),
            ("hot", "hot-3", 40),
        ] {
            let (gate, order) = (gate.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                let permit = gate.admit(tenant).unwrap();
                order.lock().push(tag);
                drop(permit);
            }));
        }
        // Let all three park in the queue before releasing the runner.
        while gate.queue_depth() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().clone();
        let pos = |tag: &str| order.iter().position(|t| *t == tag).unwrap();
        assert!(
            pos("starved-1") < pos("hot-3"),
            "starved tenant must beat the hot tenant's later arrival: {order:?}"
        );
    }

    #[test]
    fn queue_bound_rejects_excess_arrivals() {
        let gate = AdmissionGate::new(1, 1);
        let running = gate.admit("a").unwrap();
        let parked = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.admit("a").map(drop))
        };
        while gate.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue holds 1 waiter already: the third arrival is rejected.
        let err = gate.admit("b").unwrap_err();
        assert!(err.message().contains("admission rejected"), "{err}");
        drop(running);
        parked.join().unwrap().unwrap();
    }

    #[test]
    fn cancelled_waiter_returns_its_ticket_and_errors_cancelled() {
        let gate = AdmissionGate::new(1, 8);
        let runner = gate.admit("a").unwrap();
        let token = CancelToken::new();
        let waiter = {
            let (gate, token) = (gate.clone(), token.clone());
            std::thread::spawn(move || gate.admit_cancellable("a", &token).map(drop))
        };
        while gate.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        token.cancel("caller gave up");
        let err = waiter.join().unwrap().unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        // The abandoned ticket must not linger in the queue.
        assert_eq!(gate.queue_depth(), 0);
        drop(runner);
        assert_eq!(gate.running(), 0);
    }

    #[test]
    fn close_rejects_new_arrivals_but_drains_parked_waiters() {
        let gate = AdmissionGate::new(1, 8);
        let runner = gate.admit("a").unwrap();
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.admit("a").map(drop))
        };
        while gate.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate.close();
        let err = gate.admit("b").unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        // Phase 1 is drain, not expel: the parked waiter still gets the
        // freed slot and completes normally.
        drop(runner);
        waiter.join().unwrap().unwrap();
        assert!(gate.await_idle(Duration::from_secs(2)));
    }

    #[test]
    fn permit_drop_during_expulsion_does_not_leak_the_running_slot() {
        // The shutdown race: a permit released while waiters are being
        // expelled must NOT re-dispatch its slot. If it did, the grant
        // would land on a waiter that is rejecting itself, the running
        // count would stay at 1 forever, and the gate would never idle.
        let gate = AdmissionGate::new(1, 8);
        let runner = gate.admit("a").unwrap();
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let gate = gate.clone();
                std::thread::spawn(move || gate.admit("a").map(drop))
            })
            .collect();
        while gate.queue_depth() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(gate.expel_waiters(), 3);
        // Release the running permit while the expelled waiters race to
        // reject themselves.
        drop(runner);
        for w in waiters {
            let err = w.join().unwrap().unwrap_err();
            assert!(err.is_cancelled(), "{err}");
        }
        assert!(
            gate.await_idle(Duration::from_secs(2)),
            "gate must reach idle: running={} waiting={}",
            gate.running(),
            gate.queue_depth()
        );
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.queue_depth(), 0);
    }

    #[test]
    fn waited_flag_reflects_queueing() {
        let gate = AdmissionGate::new(1, 8);
        let p1 = gate.admit("a").unwrap();
        assert!(!p1.waited());
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                let p = gate.admit("a").unwrap();
                let waited = p.waited();
                drop(p);
                waited
            })
        };
        while gate.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(p1);
        assert!(waiter.join().unwrap());
    }
}
