#![warn(missing_docs)]

//! # hdm-server
//!
//! Multi-tenant query serving over long-lived shared executor state —
//! the HiveServer2 + LLAP split for this reproduction.
//!
//! One [`HdmServer`] wraps one executor ([`hdm_core::Driver`]) and hands
//! out lightweight [`Session`]s. Every session shares:
//!
//! * the **filesystem and metastore** (via [`Driver::session`]);
//! * a bounded **admission gate** with per-tenant fair queueing
//!   ([`admission::AdmissionGate`]) sized by `hive.server.pool.size` and
//!   `hive.server.queue.max`;
//! * the **ORC data/metadata cache** ([`hdm_storage::OrcDataCache`],
//!   budget `hive.server.io.cache.mb`), attached to the DFS as a
//!   read-through [`hdm_dfs::RangeCache`] so every session's scans hit
//!   the same daemon-resident bytes;
//! * the **result cache** ([`result_cache::ResultCache`]), keyed on
//!   normalized query text + engine + session conf + the data versions
//!   of every referenced table, invalidated lazily when a reload bumps
//!   a version.
//!
//! The differential contract: rows served through a session — cached or
//! not, queued or not — are byte-identical to a solo single-session run
//! of the same statement with the same conf and engine.
//!
//! ```
//! use hdm_core::Driver;
//! use hdm_server::HdmServer;
//!
//! let driver = Driver::in_memory();
//! driver.execute("CREATE TABLE t (k BIGINT); INSERT INTO t VALUES (1), (2)").unwrap();
//! let server = HdmServer::over(driver).unwrap();
//! let session = server.session("tenant-a");
//! let r = session.execute("SELECT k FROM t ORDER BY k").unwrap();
//! assert_eq!(r.to_lines(), vec!["1", "2"]);
//! // The repeat comes from the result cache — byte-identical.
//! let again = session.execute("SELECT k FROM t ORDER BY k").unwrap();
//! assert_eq!(again.to_lines(), r.to_lines());
//! assert_eq!(server.stats().result_hits, 1);
//! ```

pub mod admission;
pub mod result_cache;

pub use admission::{AdmissionGate, Permit};
pub use result_cache::{ResultCache, ResultCacheStats};

use hdm_common::error::Result;
use hdm_core::ast::Statement;
use hdm_core::parser::parse_script;
use hdm_core::{Driver, EngineKind, QueryResult};
use hdm_storage::{CacheStats, OrcDataCache};
use result_cache::cache_key;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-in-time counters of an [`HdmServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Queries granted a permit (after queueing or not).
    pub admitted: u64,
    /// Admitted queries that waited in the queue first.
    pub queued: u64,
    /// Queries rejected because the wait queue was full.
    pub rejected: u64,
    /// Queries answered entirely from the result cache.
    pub result_hits: u64,
    /// Cacheable queries that had to execute.
    pub result_misses: u64,
    /// ORC data-cache counters, when the cache is enabled.
    pub io: Option<CacheStats>,
}

#[derive(Debug)]
struct ServerShared {
    base: Driver,
    gate: AdmissionGate,
    results: Option<ResultCache>,
    io_cache: Option<Arc<OrcDataCache>>,
    obs: hdm_obs::ObsHandle,
    next_session: AtomicU64,
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
}

/// The serving frontend: session pool + admission + shared caches.
///
/// Cloning shares the same server state (like an `Arc`).
#[derive(Debug, Clone)]
pub struct HdmServer {
    inner: Arc<ServerShared>,
}

impl HdmServer {
    /// Stand a server up over an executor. Reads every `hive.server.*`
    /// knob from the driver's conf; attaches the ORC cache to the
    /// driver's DFS when `hive.server.io.cache.mb` > 0.
    ///
    /// # Errors
    /// [`hdm_common::error::HdmError::Config`] on malformed or
    /// out-of-range `hive.server.*` values.
    pub fn over(driver: Driver) -> Result<HdmServer> {
        let conf = driver.conf();
        let pool = conf.server_pool_size()?;
        let queue_max = conf.server_queue_max()?;
        let io_mb = conf.server_io_cache_mb()?;
        let result_entries = if conf.server_result_cache()? {
            conf.server_result_cache_entries()?
        } else {
            0
        };
        let io_cache = if io_mb > 0 {
            let root = driver.metastore().storage.root.trim_end_matches('/');
            let prefix = format!("{root}/");
            let cache = Arc::new(OrcDataCache::new(io_mb * 1024 * 1024, &prefix));
            driver
                .dfs()
                .attach_read_cache(Some(cache.clone() as Arc<dyn hdm_dfs::RangeCache>));
            Some(cache)
        } else {
            None
        };
        Ok(HdmServer {
            inner: Arc::new(ServerShared {
                base: driver,
                gate: AdmissionGate::new(pool, queue_max),
                results: (result_entries > 0).then(|| ResultCache::new(result_entries)),
                io_cache,
                // The server's own track set is always on: per-session
                // spans and `server.*` metrics are the serving layer's
                // product, independent of per-query `hive.obs.enabled`.
                obs: hdm_obs::ObsHandle::enabled_with_stride(1),
                next_session: AtomicU64::new(1),
                admitted: AtomicU64::new(0),
                queued: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
        })
    }

    /// Open a session for `tenant`. Sessions are cheap; each carries its
    /// own conf/engine copied from the server's base driver.
    pub fn session(&self, tenant: &str) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        Session {
            server: Arc::clone(&self.inner),
            driver: self.inner.base.session(),
            tenant: tenant.to_string(),
            track: format!("session{id}"),
            id,
        }
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            queued: self.inner.queued.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            result_hits: self.inner.results.as_ref().map_or(0, |r| r.stats().hits),
            result_misses: self.inner.results.as_ref().map_or(0, |r| r.stats().misses),
            io: self.inner.io_cache.as_ref().map(|c| c.stats()),
        }
    }

    /// ORC data-cache counters (None when the cache is off).
    pub fn io_cache_stats(&self) -> Option<CacheStats> {
        self.inner.io_cache.as_ref().map(|c| c.stats())
    }

    /// Result-cache counters (None when the cache is off).
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.inner.results.as_ref().map(|r| r.stats())
    }

    /// Snapshot the server's observability state — per-session tracks
    /// plus `server.*` counters and gauges, with the cache counters
    /// synced in as gauges first.
    pub fn obs_snapshot(&self) -> hdm_obs::ObsSnapshot {
        let obs = &self.inner.obs;
        if let Some(io) = self.io_cache_stats() {
            obs.gauge("server.io.cache.hit", "").set(io.hits as i64);
            obs.gauge("server.io.cache.miss", "").set(io.misses as i64);
            obs.gauge("server.io.cache.evictions", "")
                .set(io.evictions as i64);
            obs.gauge("server.io.cache.bytes", "").set(io.bytes as i64);
        }
        if let Some(rc) = self.result_cache_stats() {
            obs.gauge("server.result.cache.entries", "")
                .set(rc.entries as i64);
        }
        obs.snapshot()
    }
}

/// One tenant-scoped session over the shared executor state.
#[derive(Debug)]
pub struct Session {
    server: Arc<ServerShared>,
    driver: Driver,
    tenant: String,
    track: String,
    id: u64,
}

impl Session {
    /// This session's id (also its obs track, `session{id}`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The session's private driver (own conf + engine over the shared
    /// filesystem/catalog).
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// Mutable session configuration (affects only this session; the
    /// result-cache key includes the conf, so tuned sessions never share
    /// entries with differently-tuned ones).
    pub fn conf_mut(&mut self) -> &mut hdm_common::conf::JobConf {
        self.driver.conf_mut()
    }

    /// Set this session's default engine.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.driver.set_engine(engine);
    }

    /// Execute a script on the session's default engine.
    ///
    /// # Errors
    /// Admission rejection (queue full), parse/plan/execution failures.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_on(sql, self.driver.engine())
    }

    /// Execute a script on a specific engine, through admission control
    /// and the shared caches.
    ///
    /// # Errors
    /// Admission rejection (queue full), parse/plan/execution failures.
    pub fn execute_on(&self, sql: &str, engine: EngineKind) -> Result<QueryResult> {
        let server = &*self.server;
        // A single SELECT is cacheable; anything else (DDL, DML,
        // multi-statement scripts) always executes.
        let cacheable_tables = server.results.as_ref().and_then(|_| select_tables(sql));
        let key = cacheable_tables
            .as_ref()
            .map(|_| cache_key(sql, engine, self.driver.conf()));

        // Result-cache probe: a hit is served straight from daemon
        // memory — no admission, no execution, no stages.
        if let (Some(results), Some(key)) = (server.results.as_ref(), key.as_deref()) {
            let _probe = server.obs.span(&self.track, "serve", "result-cache-probe");
            if let Some((rows, columns)) = results.lookup(key, self.driver.metastore()) {
                server
                    .obs
                    .counter(
                        "server.result.cache.hit",
                        &format!("tenant={}", self.tenant),
                    )
                    .add(1);
                return Ok(QueryResult {
                    rows,
                    columns,
                    stages: Vec::new(),
                });
            }
            server
                .obs
                .counter(
                    "server.result.cache.miss",
                    &format!("tenant={}", self.tenant),
                )
                .add(1);
        }

        // Pin the version snapshot *before* execution: if a concurrent
        // write lands mid-query, insert() sees the mismatch and refuses
        // to publish possibly-stale rows.
        let versions = cacheable_tables
            .as_ref()
            .map(|tables| self.driver.metastore().versions_of(tables));

        let permit = {
            let _wait = server.obs.span(&self.track, "serve", "admit");
            match server.gate.admit(&self.tenant) {
                Ok(p) => p,
                Err(e) => {
                    server.rejected.fetch_add(1, Ordering::Relaxed);
                    server
                        .obs
                        .counter("server.rejected", &format!("tenant={}", self.tenant))
                        .add(1);
                    return Err(e);
                }
            }
        };
        server.admitted.fetch_add(1, Ordering::Relaxed);
        server
            .obs
            .counter("server.admitted", &format!("tenant={}", self.tenant))
            .add(1);
        if permit.waited() {
            server.queued.fetch_add(1, Ordering::Relaxed);
            server
                .obs
                .counter("server.queued", &format!("tenant={}", self.tenant))
                .add(1);
        }
        server
            .obs
            .gauge("server.queue.depth", "")
            .record_max(permit.depth_at_arrival() as i64);

        let result = {
            let _exec = server.obs.span(&self.track, "serve", "exec");
            self.driver.execute_on(sql, engine)
        };
        drop(permit);

        if let (Ok(result), Some(results), Some(key), Some(versions)) =
            (&result, server.results.as_ref(), key.as_deref(), versions)
        {
            results.insert(
                key,
                versions,
                result.rows.clone(),
                result.columns.clone(),
                self.driver.metastore(),
            );
        }
        result
    }
}

/// The referenced table names iff `sql` is a single SELECT statement
/// (the cacheable shape). `None` for DDL/DML, scripts, or unparsable
/// input — those always execute.
fn select_tables(sql: &str) -> Option<Vec<String>> {
    let stmts = parse_script(sql).ok()?;
    match stmts.as_slice() {
        [Statement::Select(stmt)] => {
            let mut tables = vec![stmt.from.base.name.clone()];
            for join in &stmt.from.joins {
                tables.push(join.table.name.clone());
            }
            tables.sort();
            tables.dedup();
            Some(tables)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_tables_extracts_base_and_joins() {
        let t = select_tables("SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON a.k = c.k").unwrap();
        assert_eq!(t, vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        assert!(select_tables("CREATE TABLE t (k BIGINT)").is_none());
        assert!(select_tables("SELECT 1 FROM t; SELECT 2 FROM t").is_none());
        assert!(select_tables("not sql").is_none());
    }
}
