#![warn(missing_docs)]

//! # hdm-server
//!
//! Multi-tenant query serving over long-lived shared executor state —
//! the HiveServer2 + LLAP split for this reproduction.
//!
//! One [`HdmServer`] wraps one executor ([`hdm_core::Driver`]) and hands
//! out lightweight [`Session`]s. Every session shares:
//!
//! * the **filesystem and metastore** (via [`Driver::session`]);
//! * a bounded **admission gate** with per-tenant fair queueing
//!   ([`admission::AdmissionGate`]) sized by `hive.server.pool.size` and
//!   `hive.server.queue.max`;
//! * the **ORC data/metadata cache** ([`hdm_storage::OrcDataCache`],
//!   budget `hive.server.io.cache.mb`), attached to the DFS as a
//!   read-through [`hdm_dfs::RangeCache`] so every session's scans hit
//!   the same daemon-resident bytes;
//! * the **result cache** ([`result_cache::ResultCache`]), keyed on
//!   normalized query text + engine + session conf + the data versions
//!   of every referenced table, invalidated lazily when a reload bumps
//!   a version.
//!
//! The differential contract: rows served through a session — cached or
//! not, queued or not — are byte-identical to a solo single-session run
//! of the same statement with the same conf and engine.
//!
//! ```
//! use hdm_core::Driver;
//! use hdm_server::HdmServer;
//!
//! let driver = Driver::in_memory();
//! driver.execute("CREATE TABLE t (k BIGINT); INSERT INTO t VALUES (1), (2)").unwrap();
//! let server = HdmServer::over(driver).unwrap();
//! let session = server.session("tenant-a");
//! let r = session.execute("SELECT k FROM t ORDER BY k").unwrap();
//! assert_eq!(r.to_lines(), vec!["1", "2"]);
//! // The repeat comes from the result cache — byte-identical.
//! let again = session.execute("SELECT k FROM t ORDER BY k").unwrap();
//! assert_eq!(again.to_lines(), r.to_lines());
//! assert_eq!(server.stats().result_hits, 1);
//! ```

pub mod admission;
pub mod result_cache;

pub use admission::{AdmissionGate, Permit};
pub use result_cache::{ResultCache, ResultCacheStats};

use hdm_common::error::{HdmError, Result};
use hdm_common::CancelToken;
use hdm_core::ast::Statement;
use hdm_core::parser::parse_script;
use hdm_core::{Driver, EngineKind, QueryResult};
use hdm_storage::{CacheStats, OrcDataCache};
use parking_lot::Mutex;
use result_cache::cache_key;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Point-in-time counters of an [`HdmServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Queries granted a permit (after queueing or not).
    pub admitted: u64,
    /// Admitted queries that waited in the queue first.
    pub queued: u64,
    /// Queries rejected because the wait queue was full.
    pub rejected: u64,
    /// Queries rejected early because their projected queue wait
    /// exceeded `hive.server.shed.queue.wait.ms`.
    pub shed: u64,
    /// Queries cancelled (deadline, explicit cancel, or shutdown).
    pub cancelled: u64,
    /// Queries answered entirely from the result cache.
    pub result_hits: u64,
    /// Cacheable queries that had to execute.
    pub result_misses: u64,
    /// ORC data-cache counters, when the cache is enabled.
    pub io: Option<CacheStats>,
}

/// Per-engine consecutive-failure circuit breaker. While open, new
/// queries requesting the tripped engine are flipped to the other one
/// (HiveServer2's "degrade rather than fail" stance under a sick
/// execution backend). A success on the tripped engine closes it again.
#[derive(Debug, Default)]
struct Breaker {
    /// Consecutive execution failures on each engine.
    hadoop: AtomicU64,
    datampi: AtomicU64,
}

impl Breaker {
    fn slot(&self, engine: EngineKind) -> &AtomicU64 {
        match engine {
            EngineKind::Hadoop => &self.hadoop,
            EngineKind::DataMpi => &self.datampi,
        }
    }

    fn is_open(&self, engine: EngineKind, threshold: u64) -> bool {
        threshold > 0 && self.slot(engine).load(Ordering::Relaxed) >= threshold
    }

    fn record(&self, engine: EngineKind, ok: bool) -> u64 {
        let slot = self.slot(engine);
        if ok {
            slot.store(0, Ordering::Relaxed);
            0
        } else {
            slot.fetch_add(1, Ordering::Relaxed) + 1
        }
    }
}

#[derive(Debug)]
struct ServerShared {
    base: Driver,
    gate: AdmissionGate,
    pool: usize,
    results: Option<ResultCache>,
    io_cache: Option<Arc<OrcDataCache>>,
    obs: hdm_obs::ObsHandle,
    next_session: AtomicU64,
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    /// Live tokens of in-flight queries (queued or executing), keyed by
    /// a server-wide query sequence number. Shutdown fires the lot.
    active: Mutex<HashMap<u64, CancelToken>>,
    next_query: AtomicU64,
    /// Sum/count of completed execution times, microseconds — the basis
    /// for the shed projection.
    exec_us: AtomicU64,
    exec_n: AtomicU64,
    /// `hive.server.shed.queue.wait.ms` at server start (0 = shedding off).
    shed_wait_ms: u64,
    /// `hive.server.breaker.failures` at server start (0 = breaker off).
    breaker_threshold: u64,
    breaker: Breaker,
    shutting_down: AtomicBool,
}

impl ServerShared {
    /// Register a live query token; the guard deregisters on drop.
    fn track_query(self: &Arc<Self>, cancel: &CancelToken) -> ActiveGuard {
        let id = self.next_query.fetch_add(1, Ordering::Relaxed);
        self.active.lock().insert(id, cancel.clone());
        ActiveGuard {
            server: Arc::clone(self),
            id,
        }
    }

    /// Projected queue wait for a new arrival, in microseconds: pessimal
    /// position (behind every current waiter) times the observed mean
    /// query cost, spread over the pool. Zero while the pool has room.
    fn projected_wait_us(&self, waiting: usize, running: usize) -> u64 {
        if running < self.pool {
            return 0;
        }
        let n = self.exec_n.load(Ordering::Relaxed);
        let avg = self
            .exec_us
            .load(Ordering::Relaxed)
            .checked_div(n)
            .unwrap_or(0);
        // Never project below 1ms per queued query: an empty history (or
        // a cache-warmed microsecond average) must not disarm shedding
        // entirely while a real backlog builds.
        let per_query = avg.max(1_000);
        (waiting as u64 + 1) * per_query / self.pool as u64
    }
}

/// Removes a query's token from the active registry on drop.
struct ActiveGuard {
    server: Arc<ServerShared>,
    id: u64,
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.server.active.lock().remove(&self.id);
    }
}

/// Arms a per-query deadline: a watcher thread fires the query's
/// [`CancelToken`] when the wall-clock budget expires. Dropping the
/// monitor disarms it (wakes and joins the watcher), so the common
/// under-deadline path leaves no thread behind.
struct DeadlineMonitor {
    state: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineMonitor {
    /// Start the watcher. It begins counting immediately, so queue wait
    /// inside admission counts against the deadline — a query stuck
    /// behind a full pool can be deadline-cancelled while still queued.
    fn arm(deadline: Duration, cancel: &CancelToken, obs: &hdm_obs::ObsHandle) -> DeadlineMonitor {
        let state = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let watcher_state = Arc::clone(&state);
        let cancel = cancel.clone();
        let obs = obs.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*watcher_state;
            let mut done = lock.lock().unwrap_or_else(|p| p.into_inner());
            let end = Instant::now() + deadline;
            while !*done {
                let left = end.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    cancel.cancel(&format!(
                        "query deadline exceeded (hive.query.timeout.ms={})",
                        deadline.as_millis()
                    ));
                    obs.counter("cancel.requested", "source=deadline").add(1);
                    return;
                }
                done = match cv.wait_timeout(done, left) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        });
        DeadlineMonitor {
            state,
            handle: Some(handle),
        }
    }
}

impl Drop for DeadlineMonitor {
    fn drop(&mut self) {
        let (lock, cv) = &*self.state;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            // hdm-allow(swallowed-error): a join error only means the watcher panicked; the query is already past its deadline path and there is nothing to recover
            let _ = h.join();
        }
    }
}

/// The serving frontend: session pool + admission + shared caches.
///
/// Cloning shares the same server state (like an `Arc`).
#[derive(Debug, Clone)]
pub struct HdmServer {
    inner: Arc<ServerShared>,
}

impl HdmServer {
    /// Stand a server up over an executor. Reads every `hive.server.*`
    /// knob from the driver's conf; attaches the ORC cache to the
    /// driver's DFS when `hive.server.io.cache.mb` > 0.
    ///
    /// # Errors
    /// [`hdm_common::error::HdmError::Config`] on malformed or
    /// out-of-range `hive.server.*` values.
    pub fn over(driver: Driver) -> Result<HdmServer> {
        let conf = driver.conf();
        let pool = conf.server_pool_size()?;
        let queue_max = conf.server_queue_max()?;
        let shed_wait_ms = conf.server_shed_wait_ms()?;
        let breaker_threshold = conf.server_breaker_failures()?;
        // Validate the per-query deadline key at server start too, so a
        // malformed base conf fails fast instead of on the first query.
        conf.query_timeout_ms()?;
        let io_mb = conf.server_io_cache_mb()?;
        let result_entries = if conf.server_result_cache()? {
            conf.server_result_cache_entries()?
        } else {
            0
        };
        let io_cache = if io_mb > 0 {
            let root = driver.metastore().storage.root.trim_end_matches('/');
            let prefix = format!("{root}/");
            let cache = Arc::new(OrcDataCache::new(io_mb * 1024 * 1024, &prefix));
            driver
                .dfs()
                .attach_read_cache(Some(cache.clone() as Arc<dyn hdm_dfs::RangeCache>));
            Some(cache)
        } else {
            None
        };
        Ok(HdmServer {
            inner: Arc::new(ServerShared {
                base: driver,
                gate: AdmissionGate::new(pool, queue_max),
                pool,
                results: (result_entries > 0).then(|| ResultCache::new(result_entries)),
                io_cache,
                // The server's own track set is always on: per-session
                // spans and `server.*` metrics are the serving layer's
                // product, independent of per-query `hive.obs.enabled`.
                obs: hdm_obs::ObsHandle::enabled_with_stride(1),
                next_session: AtomicU64::new(1),
                admitted: AtomicU64::new(0),
                queued: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                active: Mutex::new(HashMap::new()),
                next_query: AtomicU64::new(1),
                exec_us: AtomicU64::new(0),
                exec_n: AtomicU64::new(0),
                shed_wait_ms,
                breaker_threshold,
                breaker: Breaker::default(),
                shutting_down: AtomicBool::new(false),
            }),
        })
    }

    /// Open a session for `tenant`. Sessions are cheap; each carries its
    /// own conf/engine copied from the server's base driver.
    pub fn session(&self, tenant: &str) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        Session {
            server: Arc::clone(&self.inner),
            driver: self.inner.base.session(),
            tenant: tenant.to_string(),
            track: format!("session{id}"),
            id,
        }
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            queued: self.inner.queued.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            result_hits: self.inner.results.as_ref().map_or(0, |r| r.stats().hits),
            result_misses: self.inner.results.as_ref().map_or(0, |r| r.stats().misses),
            io: self.inner.io_cache.as_ref().map(|c| c.stats()),
        }
    }

    /// The shared admission gate — exposed so operational tooling (and
    /// deterministic tests) can saturate or inspect the pool directly.
    pub fn admission(&self) -> &AdmissionGate {
        &self.inner.gate
    }

    /// True once [`HdmServer::shutdown`] has begun: new queries are
    /// rejected at the door.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop admitting, give in-flight and queued
    /// queries `drain_timeout` to finish naturally, then cancel the
    /// stragglers and expel any remaining queue waiters.
    ///
    /// Returns `true` when the gate drained fully inside the window
    /// (nothing had to be cancelled). The shared caches and the
    /// Metastore stay consistent either way: a cancelled query never
    /// publishes result-cache entries or partial warehouse output.
    pub fn shutdown(&self, drain_timeout: Duration) -> bool {
        let server = &*self.inner;
        server.shutting_down.store(true, Ordering::Relaxed);
        // Phase 1: close the gate. New execute() calls are rejected,
        // queued waiters keep draining into freed slots.
        server.gate.close();
        let drained = server.gate.await_idle(drain_timeout);
        if !drained {
            // Phase 2: the window expired. Fire every live query token
            // and reject every parked waiter, then wait briefly for the
            // cancellations to unwind (cancellation is cooperative — the
            // spine polls at stage/wave/slice boundaries, so this is
            // bounded by one poll interval, not by query runtime).
            let fired = {
                let active = server.active.lock();
                for token in active.values() {
                    token.cancel("server shutdown: drain window exceeded");
                }
                active.len()
            };
            server
                .obs
                .counter("server.shutdown.cancelled", "")
                .add(fired as u64);
            server
                .obs
                .counter("cancel.requested", "source=shutdown")
                .add(fired as u64);
            server.gate.expel_waiters();
            server
                .gate
                .await_idle(drain_timeout.max(Duration::from_secs(5)));
        }
        server.obs.counter("server.drained", "").add(1);
        drained
    }

    /// ORC data-cache counters (None when the cache is off).
    pub fn io_cache_stats(&self) -> Option<CacheStats> {
        self.inner.io_cache.as_ref().map(|c| c.stats())
    }

    /// Result-cache counters (None when the cache is off).
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.inner.results.as_ref().map(|r| r.stats())
    }

    /// Snapshot the server's observability state — per-session tracks
    /// plus `server.*` counters and gauges, with the cache counters
    /// synced in as gauges first.
    pub fn obs_snapshot(&self) -> hdm_obs::ObsSnapshot {
        let obs = &self.inner.obs;
        if let Some(io) = self.io_cache_stats() {
            obs.gauge("server.io.cache.hit", "").set(io.hits as i64);
            obs.gauge("server.io.cache.miss", "").set(io.misses as i64);
            obs.gauge("server.io.cache.evictions", "")
                .set(io.evictions as i64);
            obs.gauge("server.io.cache.bytes", "").set(io.bytes as i64);
        }
        if let Some(rc) = self.result_cache_stats() {
            obs.gauge("server.result.cache.entries", "")
                .set(rc.entries as i64);
        }
        obs.snapshot()
    }
}

/// One tenant-scoped session over the shared executor state.
#[derive(Debug)]
pub struct Session {
    server: Arc<ServerShared>,
    driver: Driver,
    tenant: String,
    track: String,
    id: u64,
}

impl Session {
    /// This session's id (also its obs track, `session{id}`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The session's private driver (own conf + engine over the shared
    /// filesystem/catalog).
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// Mutable session configuration (affects only this session; the
    /// result-cache key includes the conf, so tuned sessions never share
    /// entries with differently-tuned ones).
    pub fn conf_mut(&mut self) -> &mut hdm_common::conf::JobConf {
        self.driver.conf_mut()
    }

    /// Set this session's default engine.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.driver.set_engine(engine);
    }

    /// Execute a script on the session's default engine.
    ///
    /// # Errors
    /// Admission rejection (queue full), overload shed, deadline or
    /// shutdown cancellation, parse/plan/execution failures.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_on(sql, self.driver.engine())
    }

    /// Execute a script on the session's default engine under a
    /// caller-held cancel token (fire it from any thread to abandon the
    /// query cooperatively).
    ///
    /// # Errors
    /// As [`Session::execute`], plus [`HdmError::Cancelled`] once the
    /// token fires.
    pub fn execute_cancellable(&self, sql: &str, cancel: &CancelToken) -> Result<QueryResult> {
        self.execute_on_cancellable(sql, self.driver.engine(), cancel)
    }

    /// Execute a script on a specific engine, through admission control
    /// and the shared caches.
    ///
    /// # Errors
    /// Admission rejection (queue full), overload shed, deadline or
    /// shutdown cancellation, parse/plan/execution failures.
    pub fn execute_on(&self, sql: &str, engine: EngineKind) -> Result<QueryResult> {
        self.execute_on_cancellable(sql, engine, &CancelToken::default())
    }

    /// Full-control execution: explicit engine and caller-held cancel
    /// token. Every other execute path funnels here.
    ///
    /// The lifecycle is Queued → Admitted → Running → {Finished,
    /// Cancelled, Shed}: a shutdown check and the overload shed gate run
    /// before admission, the per-query deadline (if
    /// `hive.query.timeout.ms` > 0) is armed before queueing so queue
    /// wait spends the same budget as execution, and the per-engine
    /// circuit breaker may flip the query to the other engine before it
    /// runs.
    ///
    /// # Errors
    /// As [`Session::execute_on`], plus [`HdmError::Cancelled`] once
    /// `cancel` (or the deadline, or server shutdown) fires.
    pub fn execute_on_cancellable(
        &self,
        sql: &str,
        engine: EngineKind,
        cancel: &CancelToken,
    ) -> Result<QueryResult> {
        let server = &*self.server;
        if server.shutting_down.load(Ordering::Relaxed) {
            return Err(HdmError::Cancelled(
                "server is shutting down; not accepting new queries".to_string(),
            ));
        }
        cancel.bail_if_cancelled()?;

        // Circuit breaker: a sick engine (consecutive non-cancelled
        // failures at threshold) degrades to the other engine rather
        // than failing the query. The differential contract makes the
        // flip invisible in the rows.
        let engine = if server.breaker.is_open(engine, server.breaker_threshold) {
            let flipped = match engine {
                EngineKind::Hadoop => EngineKind::DataMpi,
                EngineKind::DataMpi => EngineKind::Hadoop,
            };
            server
                .obs
                .counter("server.breaker.flip", &format!("from={engine:?}"))
                .add(1);
            flipped
        } else {
            engine
        };
        // A single SELECT is cacheable; anything else (DDL, DML,
        // multi-statement scripts) always executes.
        let cacheable_tables = server.results.as_ref().and_then(|_| select_tables(sql));
        let key = cacheable_tables
            .as_ref()
            .map(|_| cache_key(sql, engine, self.driver.conf()));

        // Result-cache probe: a hit is served straight from daemon
        // memory — no admission, no execution, no stages.
        if let (Some(results), Some(key)) = (server.results.as_ref(), key.as_deref()) {
            let _probe = server.obs.span(&self.track, "serve", "result-cache-probe");
            if let Some((rows, columns)) = results.lookup(key, self.driver.metastore()) {
                server
                    .obs
                    .counter(
                        "server.result.cache.hit",
                        &format!("tenant={}", self.tenant),
                    )
                    .add(1);
                return Ok(QueryResult {
                    rows,
                    columns,
                    stages: Vec::new(),
                });
            }
            server
                .obs
                .counter(
                    "server.result.cache.miss",
                    &format!("tenant={}", self.tenant),
                )
                .add(1);
        }

        // Pin the version snapshot *before* execution: if a concurrent
        // write lands mid-query, insert() sees the mismatch and refuses
        // to publish possibly-stale rows.
        let versions = cacheable_tables
            .as_ref()
            .map(|tables| self.driver.metastore().versions_of(tables));

        // Overload shed: reject early when the projected queue wait for
        // this arrival exceeds the configured ceiling. A shed query
        // costs the server nothing downstream — no permit, no token, no
        // executor work.
        if server.shed_wait_ms > 0 {
            let projected =
                server.projected_wait_us(server.gate.queue_depth(), server.gate.running());
            if projected > server.shed_wait_ms * 1_000 {
                server.shed.fetch_add(1, Ordering::Relaxed);
                server
                    .obs
                    .counter("server.shed", &format!("tenant={}", self.tenant))
                    .add(1);
                return Err(HdmError::Overloaded(format!(
                    "projected queue wait {}ms exceeds hive.server.shed.queue.wait.ms={}",
                    projected / 1_000,
                    server.shed_wait_ms
                )));
            }
        }

        // Register the token (shutdown fires every registered token) and
        // arm the deadline before queueing: time spent waiting for a
        // permit draws down the same `hive.query.timeout.ms` budget as
        // execution does.
        let _active = self.server.track_query(cancel);
        let timeout_ms = self.driver.conf().query_timeout_ms()?;
        let _deadline = (timeout_ms > 0)
            .then(|| DeadlineMonitor::arm(Duration::from_millis(timeout_ms), cancel, &server.obs));

        let permit = {
            let _wait = server.obs.span(&self.track, "serve", "admit");
            match server.gate.admit_cancellable(&self.tenant, cancel) {
                Ok(p) => p,
                Err(e) => {
                    if e.is_cancelled() {
                        server.cancelled.fetch_add(1, Ordering::Relaxed);
                        self.acknowledge_cancel(cancel);
                    } else {
                        server.rejected.fetch_add(1, Ordering::Relaxed);
                        server
                            .obs
                            .counter("server.rejected", &format!("tenant={}", self.tenant))
                            .add(1);
                    }
                    return Err(e);
                }
            }
        };
        server.admitted.fetch_add(1, Ordering::Relaxed);
        server
            .obs
            .counter("server.admitted", &format!("tenant={}", self.tenant))
            .add(1);
        if permit.waited() {
            server.queued.fetch_add(1, Ordering::Relaxed);
            server
                .obs
                .counter("server.queued", &format!("tenant={}", self.tenant))
                .add(1);
        }
        server
            .obs
            .gauge("server.queue.depth", "")
            .record_max(permit.depth_at_arrival() as i64);

        let started = Instant::now();
        let result = {
            let _exec = server.obs.span(&self.track, "serve", "exec");
            self.driver.execute_on_cancellable(sql, engine, cancel)
        };
        drop(permit);

        match &result {
            Ok(_) => {
                server.breaker.record(engine, true);
            }
            Err(e) if e.is_cancelled() => {
                // Cancellation is neither an engine failure (no breaker
                // charge) nor a cost observation (a truncated run would
                // bias the shed projection low).
                server.cancelled.fetch_add(1, Ordering::Relaxed);
                self.acknowledge_cancel(cancel);
            }
            Err(_) => {
                let streak = server.breaker.record(engine, false);
                if server.breaker_threshold > 0 && streak == server.breaker_threshold {
                    server
                        .obs
                        .counter("server.breaker.open", &format!("engine={engine:?}"))
                        .add(1);
                }
            }
        }
        if !matches!(&result, Err(e) if e.is_cancelled()) {
            server
                .exec_us
                .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
            server.exec_n.fetch_add(1, Ordering::Relaxed);
        }

        if let (Ok(result), Some(results), Some(key), Some(versions)) =
            (&result, server.results.as_ref(), key.as_deref(), versions)
        {
            results.insert(
                key,
                versions,
                result.rows.clone(),
                result.columns.clone(),
                self.driver.metastore(),
            );
        }
        result
    }

    /// Record that a fired token has been observed by the serving layer:
    /// bumps `cancel.acknowledged` and, when the token's fire time is
    /// known, feeds request→acknowledge latency into `cancel.latency.ms`.
    fn acknowledge_cancel(&self, cancel: &CancelToken) {
        let server = &*self.server;
        server
            .obs
            .counter("cancel.acknowledged", &format!("tenant={}", self.tenant))
            .add(1);
        if let Some(ms) = cancel.fired_elapsed_ms() {
            server
                .obs
                .timer("cancel.latency.ms", "", hdm_obs::TIMER_US_BUCKET)
                .observe(ms);
        }
    }
}

/// The referenced table names iff `sql` is a single SELECT statement
/// (the cacheable shape). `None` for DDL/DML, scripts, or unparsable
/// input — those always execute.
fn select_tables(sql: &str) -> Option<Vec<String>> {
    let stmts = parse_script(sql).ok()?;
    match stmts.as_slice() {
        [Statement::Select(stmt)] => {
            let mut tables = vec![stmt.from.base.name.clone()];
            for join in &stmt.from.joins {
                tables.push(join.table.name.clone());
            }
            tables.sort();
            tables.dedup();
            Some(tables)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_tables_extracts_base_and_joins() {
        let t = select_tables("SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON a.k = c.k").unwrap();
        assert_eq!(t, vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        assert!(select_tables("CREATE TABLE t (k BIGINT)").is_none());
        assert!(select_tables("SELECT 1 FROM t; SELECT 2 FROM t").is_none());
        assert!(select_tables("not sql").is_none());
    }
}
