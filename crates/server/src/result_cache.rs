//! The query result cache, keyed on normalized query text and the data
//! versions of every table the query reads.
//!
//! Hive's result cache (`hive.query.results.cache.enabled`) answers a
//! repeated query from a previous run's output, as long as none of the
//! inputs changed. Here an entry records the `(table, version)` snapshot
//! taken **before** the producing execution started; a lookup re-checks
//! every pinned version against the live metastore, so any reload —
//! `INSERT`, `INSERT OVERWRITE`, `DROP`/recreate, bulk load — that
//! bumped a version lazily invalidates every dependent entry. Admission
//! back into the cache re-validates the snapshot too, so a query that
//! raced a concurrent write never publishes stale rows.

use hdm_common::conf::JobConf;
use hdm_common::row::Row;
use hdm_core::catalog::Metastore;
use hdm_core::EngineKind;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Collapse whitespace runs so formatting differences (newlines,
/// indentation) share a cache entry. Case is preserved: lowering it
/// would merge `'a'` and `'A'` string literals into one key.
pub fn normalize_sql(sql: &str) -> String {
    sql.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The full cache key: normalized text, engine, and every conf entry
/// (any knob may change results — engine tuning, pushdown, limits).
pub fn cache_key(sql: &str, engine: EngineKind, conf: &JobConf) -> String {
    let mut key = String::with_capacity(sql.len() + 64);
    key.push_str(engine.name());
    key.push('\n');
    for (k, v) in conf.iter() {
        key.push_str(k);
        key.push('=');
        key.push_str(v);
        key.push('\x1f');
    }
    key.push('\n');
    key.push_str(&normalize_sql(sql));
    key
}

/// A cached query answer.
#[derive(Debug, Clone)]
struct ResultEntry {
    rows: Vec<Row>,
    columns: Vec<String>,
    /// `(table, version)` pinned before the producing run executed.
    versions: Vec<(String, u64)>,
    tick: u64,
}

#[derive(Debug, Default)]
struct ResultInner {
    map: HashMap<String, ResultEntry>,
    lru: BTreeMap<u64, String>,
    tick: u64,
}

impl ResultInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn remove_key(&mut self, key: &str) {
        if let Some(entry) = self.map.remove(key) {
            self.lru.remove(&entry.tick);
        }
    }
}

/// Point-in-time counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Cacheable queries that had to execute.
    pub misses: u64,
    /// Entries dropped because a pinned table version moved on.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// LRU result cache bounded by entry count
/// (`hive.server.result.cache.entries`).
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    inner: Mutex<ResultInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `cap` entries.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap,
            inner: Mutex::new(ResultInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ResultCacheStats {
        let entries = self.inner.lock().map.len() as u64;
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Serve `key` if present *and* every pinned table version still
    /// matches the live metastore; a version mismatch drops the entry
    /// (lazy invalidation) and reports a miss.
    pub fn lookup(&self, key: &str, metastore: &Metastore) -> Option<(Vec<Row>, Vec<String>)> {
        let mut inner = self.inner.lock();
        let Some(entry) = inner.map.get(key) else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let fresh = entry
            .versions
            .iter()
            .all(|(table, v)| metastore.version(table) == *v);
        if !fresh {
            inner.remove_key(key);
            drop(inner);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let out = (entry.rows.clone(), entry.columns.clone());
        let tick = inner.next_tick();
        if let Some(entry) = inner.map.get_mut(key) {
            let prev = std::mem::replace(&mut entry.tick, tick);
            inner.lru.remove(&prev);
            inner.lru.insert(tick, key.to_string());
        }
        drop(inner);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(out)
    }

    /// Admit an answer produced against the `versions` snapshot. The
    /// snapshot is re-validated against the live metastore first: if any
    /// table moved on while the query executed, the rows may already be
    /// stale and the entry is not stored.
    pub fn insert(
        &self,
        key: &str,
        versions: Vec<(String, u64)>,
        rows: Vec<Row>,
        columns: Vec<String>,
        metastore: &Metastore,
    ) {
        if self.cap == 0 {
            return;
        }
        if versions
            .iter()
            .any(|(table, v)| metastore.version(table) != *v)
        {
            return;
        }
        let mut inner = self.inner.lock();
        inner.remove_key(key);
        let tick = inner.next_tick();
        inner.map.insert(
            key.to_string(),
            ResultEntry {
                rows,
                columns,
                versions,
                tick,
            },
        );
        inner.lru.insert(tick, key.to_string());
        while inner.map.len() > self.cap {
            let victim = match inner.lru.iter().next() {
                Some((_, k)) => k.clone(),
                None => break,
            };
            inner.remove_key(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::value::DataType;
    use hdm_storage::FormatKind;

    fn ms_with(tables: &[&str]) -> Metastore {
        let ms = Metastore::new();
        for t in tables {
            ms.create_table(
                t,
                vec![("c".into(), DataType::Long)],
                FormatKind::Text,
                false,
            )
            .unwrap();
        }
        ms
    }

    fn row(n: i64) -> Row {
        Row::from(vec![hdm_common::value::Value::Long(n)])
    }

    #[test]
    fn hit_roundtrip_and_version_invalidation() {
        let ms = ms_with(&["t"]);
        let cache = ResultCache::new(8);
        let key = "k1";
        let versions = ms.versions_of(&["t".to_string()]);
        cache.insert(key, versions, vec![row(1)], vec!["c".into()], &ms);
        let (rows, cols) = cache.lookup(key, &ms).expect("fresh entry hits");
        assert_eq!(rows, vec![row(1)]);
        assert_eq!(cols, vec!["c".to_string()]);
        // A reload bumps the version: the entry lazily invalidates.
        ms.bump_version("t");
        assert!(cache.lookup(key, &ms).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.invalidations, s.entries), (1, 1, 0));
    }

    #[test]
    fn insert_is_skipped_when_a_table_moved_during_execution() {
        let ms = ms_with(&["t"]);
        let cache = ResultCache::new(8);
        let versions = ms.versions_of(&["t".to_string()]);
        ms.bump_version("t"); // concurrent write lands mid-query
        cache.insert("k", versions, vec![row(1)], vec!["c".into()], &ms);
        assert!(cache.lookup("k", &ms).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_oldest_beyond_cap() {
        let ms = ms_with(&["t"]);
        let cache = ResultCache::new(2);
        let versions = ms.versions_of(&["t".to_string()]);
        for (k, n) in [("a", 1), ("b", 2)] {
            cache.insert(k, versions.clone(), vec![row(n)], vec!["c".into()], &ms);
        }
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup("a", &ms).is_some());
        cache.insert("c", versions, vec![row(3)], vec!["c".into()], &ms);
        assert!(cache.lookup("a", &ms).is_some());
        assert!(cache.lookup("b", &ms).is_none());
        assert!(cache.lookup("c", &ms).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn key_separates_sql_engine_and_conf() {
        let conf = JobConf::new();
        let base = cache_key("SELECT  1", EngineKind::DataMpi, &conf);
        assert_eq!(base, cache_key("SELECT 1", EngineKind::DataMpi, &conf));
        assert_ne!(base, cache_key("SELECT 1", EngineKind::Hadoop, &conf));
        assert_ne!(base, cache_key("select 1", EngineKind::DataMpi, &conf));
        let tuned = JobConf::new().with(hdm_common::conf::KEY_COMBINER, false);
        assert_ne!(base, cache_key("SELECT 1", EngineKind::DataMpi, &tuned));
    }
}
