//! Shared ORC data/metadata cache (the LLAP daemon-cache analogue).
//!
//! Enterprise Hive moved hot ORC bytes out of the per-query process into
//! a long-lived daemon: LLAP caches footers and row-group byte ranges so
//! concurrent queries over the same tables skip the datanode entirely.
//! [`OrcDataCache`] reproduces that shape over [`hdm_dfs::RangeCache`]:
//!
//! * entries are keyed on the exact `(path, offset, len)` ranges the ORC
//!   reader issues — footer reads and per-column chunk reads are
//!   deterministic for a given file, so exact-range keying hits on every
//!   re-read without any sub-range assembly;
//! * only paths under the warehouse root are cached — `/tmp` stage
//!   intermediates are written once and read once, and would otherwise
//!   flush the budget on every query;
//! * the budget (`hive.server.io.cache.mb`) is enforced in bytes with
//!   strict LRU eviction; an entry larger than the whole budget is never
//!   admitted;
//! * hit/miss/eviction counters are relaxed atomics so the serving layer
//!   can export `server.io.cache.*` gauges without taking the cache lock.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

type RangeKey = (String, u64, u64);

/// Point-in-time counters of an [`OrcDataCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups for cacheable paths that had to go to disk.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Resident entries: range key -> (bytes, lru tick).
    map: HashMap<RangeKey, (Vec<u8>, u64)>,
    /// Recency order: lru tick -> range key (oldest tick first).
    lru: BTreeMap<u64, RangeKey>,
    bytes: u64,
    tick: u64,
}

impl CacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn remove_key(&mut self, key: &RangeKey) {
        if let Some((bytes, tick)) = self.map.remove(key) {
            self.lru.remove(&tick);
            self.bytes = self.bytes.saturating_sub(bytes.len() as u64);
        }
    }
}

/// Byte-budgeted LRU cache over the ranged reads the ORC reader issues.
///
/// Plugs into [`hdm_dfs::Dfs::attach_read_cache`]; shared across every
/// session of an hdm-server instance.
#[derive(Debug)]
pub struct OrcDataCache {
    budget: u64,
    prefix: String,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl OrcDataCache {
    /// A cache holding at most `budget_bytes` of data for paths under
    /// `prefix` (the warehouse root; stage intermediates elsewhere are
    /// never admitted).
    pub fn new(budget_bytes: u64, prefix: &str) -> OrcDataCache {
        OrcDataCache {
            budget: budget_bytes,
            prefix: prefix.to_string(),
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (bytes, entries) = {
            let inner = self.inner.lock();
            (inner.bytes, inner.map.len() as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }

    fn cacheable(&self, path: &str) -> bool {
        self.budget > 0 && path.starts_with(&self.prefix)
    }
}

impl hdm_dfs::RangeCache for OrcDataCache {
    fn lookup(&self, path: &str, offset: u64, len: u64) -> Option<Vec<u8>> {
        if !self.cacheable(path) {
            return None;
        }
        let key: RangeKey = (path.to_string(), offset, len);
        let mut inner = self.inner.lock();
        let tick = inner.next_tick();
        if let Some((bytes, old_tick)) = inner.map.get_mut(&key) {
            let out = bytes.clone();
            let prev = std::mem::replace(old_tick, tick);
            inner.lru.remove(&prev);
            inner.lru.insert(tick, key);
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(out);
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn admit(&self, path: &str, offset: u64, len: u64, bytes: &[u8]) {
        if !self.cacheable(path) || bytes.len() as u64 > self.budget {
            return;
        }
        let key: RangeKey = (path.to_string(), offset, len);
        let mut evicted = 0u64;
        {
            let mut inner = self.inner.lock();
            // Replace a racing duplicate instead of double-counting it.
            inner.remove_key(&key);
            let tick = inner.next_tick();
            inner.bytes += bytes.len() as u64;
            inner.map.insert(key.clone(), (bytes.to_vec(), tick));
            inner.lru.insert(tick, key);
            while inner.bytes > self.budget {
                let victim = match inner.lru.iter().next() {
                    Some((_, k)) => k.clone(),
                    None => break,
                };
                inner.remove_key(&victim);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn invalidate_path(&self, path: &str) {
        let mut inner = self.inner.lock();
        let stale: Vec<RangeKey> = inner.map.keys().filter(|k| k.0 == path).cloned().collect();
        for key in &stale {
            inner.remove_key(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_dfs::RangeCache;

    #[test]
    fn hit_after_admit_and_miss_counting() {
        let c = OrcDataCache::new(1024, "/warehouse/");
        assert!(c.lookup("/warehouse/t/part-0", 0, 4).is_none());
        c.admit("/warehouse/t/part-0", 0, 4, b"abcd");
        assert_eq!(c.lookup("/warehouse/t/part-0", 0, 4).unwrap(), b"abcd");
        // A different range of the same file is its own entry.
        assert!(c.lookup("/warehouse/t/part-0", 4, 4).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 2, 1, 4));
    }

    #[test]
    fn non_warehouse_paths_are_ignored() {
        let c = OrcDataCache::new(1024, "/warehouse/");
        c.admit("/tmp/q1/stage0/part-0", 0, 4, b"abcd");
        assert!(c.lookup("/tmp/q1/stage0/part-0", 0, 4).is_none());
        let s = c.stats();
        // Intermediates neither occupy space nor pollute miss counts.
        assert_eq!((s.misses, s.entries, s.bytes), (0, 0, 0));
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let c = OrcDataCache::new(10, "/warehouse/");
        c.admit("/warehouse/a", 0, 4, b"aaaa");
        c.admit("/warehouse/b", 0, 4, b"bbbb");
        // Touch `a` so `b` becomes the LRU victim.
        assert!(c.lookup("/warehouse/a", 0, 4).is_some());
        c.admit("/warehouse/c", 0, 4, b"cccc");
        assert!(c.lookup("/warehouse/a", 0, 4).is_some());
        assert!(c.lookup("/warehouse/b", 0, 4).is_none());
        assert!(c.lookup("/warehouse/c", 0, 4).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().bytes <= 10);
    }

    #[test]
    fn oversized_entries_are_never_admitted() {
        let c = OrcDataCache::new(3, "/warehouse/");
        c.admit("/warehouse/a", 0, 4, b"aaaa");
        assert!(c.lookup("/warehouse/a", 0, 4).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn zero_budget_disables_everything() {
        let c = OrcDataCache::new(0, "/warehouse/");
        c.admit("/warehouse/a", 0, 4, b"aaaa");
        assert!(c.lookup("/warehouse/a", 0, 4).is_none());
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn invalidate_path_drops_all_ranges_of_that_path_only() {
        let c = OrcDataCache::new(1024, "/warehouse/");
        c.admit("/warehouse/a", 0, 4, b"aaaa");
        c.admit("/warehouse/a", 4, 4, b"AAAA");
        c.admit("/warehouse/b", 0, 4, b"bbbb");
        c.invalidate_path("/warehouse/a");
        assert!(c.lookup("/warehouse/a", 0, 4).is_none());
        assert!(c.lookup("/warehouse/a", 4, 4).is_none());
        assert!(c.lookup("/warehouse/b", 0, 4).is_some());
        assert_eq!(c.stats().entries, 1);
    }
}
