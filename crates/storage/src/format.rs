//! Format-independent reading/writing traits and table storage layout.

use crate::{orc, text};
use hdm_common::error::Result;
use hdm_common::row::{Row, Schema};
use hdm_common::value::Value;
use hdm_dfs::{Dfs, FileSplit, NodeId};

/// Which on-disk format a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Delimited text (Hive default).
    Text,
    /// ORC-like columnar.
    Orc,
}

impl FormatKind {
    /// Parse `"text"` / `"orc"` (case-insensitive).
    pub fn parse(s: &str) -> Option<FormatKind> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "textfile" => Some(FormatKind::Text),
            "orc" | "orcfile" => Some(FormatKind::Orc),
            _ => None,
        }
    }

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FormatKind::Text => "text",
            FormatKind::Orc => "orc",
        }
    }
}

/// Streaming row writer bound to one output file.
pub trait RowSink {
    /// Append one row.
    ///
    /// # Errors
    /// Fails if the row does not match the schema or the file write fails.
    fn write_row(&mut self, row: &Row) -> Result<()>;
    /// Finish and publish the file.
    ///
    /// # Errors
    /// Propagates storage/DFS failures.
    fn close(self: Box<Self>) -> Result<u64>;
}

/// A fully-materialized read of one split: rows plus the bytes that were
/// actually fetched from the DFS to produce them (ORC column pruning
/// makes these differ from the split length).
#[derive(Debug, Clone, PartialEq)]
pub struct RowSource {
    /// Decoded rows (already projected if the format supports projection).
    pub rows: Vec<Row>,
    /// Bytes physically read from the DFS.
    pub bytes_read: u64,
}

/// Split enumeration with planning-side pruning accounting: formats
/// that keep per-stripe statistics can drop whole stripes from the
/// split set before any task is scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedSplits {
    /// Splits covering the stripes that may contain matching rows.
    pub splits: Vec<FileSplit>,
    /// Stripes dropped at planning time by predicate statistics.
    pub pruned_stripes: u64,
    /// Rows contained in the pruned stripes.
    pub pruned_rows: u64,
}

/// One decoded stripe kept column-wise: `columns[c][r]` is row `r` of
/// projected column `c`. Row order matches the row-at-a-time read.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarStripe {
    /// Per-column value vectors, all of length `rows`.
    pub columns: Vec<Vec<Value>>,
    /// Rows in this stripe (kept explicitly for zero-width projections).
    pub rows: usize,
}

/// A columnar read of one split: stripes in file order plus the bytes
/// fetched. Transposing each stripe yields exactly [`RowSource::rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarSource {
    /// Decoded stripes in file order.
    pub stripes: Vec<ColumnarStripe>,
    /// Bytes physically read from the DFS.
    pub bytes_read: u64,
}

/// One file format: how rows get onto and off the simulated DFS.
pub trait FileFormat: Send + Sync {
    /// The format tag.
    fn kind(&self) -> FormatKind;

    /// Open a writer for `path`.
    ///
    /// # Errors
    /// Fails if the path already exists.
    fn create(
        &self,
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        node: NodeId,
    ) -> Result<Box<dyn RowSink>>;

    /// Read one split, optionally projecting columns and pushing down
    /// predicates (formats that can't push down must ignore these hints
    /// *for filtering* but still return all rows; the caller re-applies
    /// the residual filter).
    ///
    /// # Errors
    /// Propagates DFS/decode failures.
    fn read_split(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        schema: &Schema,
        projection: Option<&[usize]>,
        predicates: &[orc::Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<RowSource>;

    /// Input splits for one file of this format (text: block-aligned;
    /// ORC: stripe-aligned groups).
    ///
    /// # Errors
    /// Fails if the file is missing.
    fn splits(&self, dfs: &Dfs, path: &str) -> Result<Vec<FileSplit>>;

    /// Input splits with planning-side predicate pruning. Formats with
    /// per-stripe statistics (ORC) drop stripes no predicate admits and
    /// report how much was skipped; the default ignores the predicates.
    ///
    /// # Errors
    /// Fails if the file is missing.
    fn plan_splits(
        &self,
        dfs: &Dfs,
        path: &str,
        predicates: &[orc::Predicate],
    ) -> Result<PlannedSplits> {
        let _ = predicates;
        Ok(PlannedSplits {
            splits: self.splits(dfs, path)?,
            pruned_stripes: 0,
            pruned_rows: 0,
        })
    }

    /// Read one split column-wise, if the format stores columns natively.
    /// Returns `Ok(None)` for row-oriented formats; callers must fall
    /// back to [`FileFormat::read_split`]. Projection and predicate
    /// semantics match `read_split` exactly (same stripes, same order).
    ///
    /// # Errors
    /// Propagates DFS/decode failures.
    fn read_split_columns(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        schema: &Schema,
        projection: Option<&[usize]>,
        predicates: &[orc::Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<Option<ColumnarSource>> {
        let _ = (dfs, split, schema, projection, predicates, reader_node);
        Ok(None)
    }
}

/// Construct the format implementation for a tag.
pub fn format_for(kind: FormatKind) -> Box<dyn FileFormat> {
    match kind {
        FormatKind::Text => Box::new(text::TextFormat::default()),
        FormatKind::Orc => Box::new(orc::OrcFormat::default()),
    }
}

/// The `warehouse/<table>/part-N` layout Hive uses for managed tables.
#[derive(Debug, Clone)]
pub struct TableStorage {
    /// Warehouse root, e.g. `/warehouse`.
    pub root: String,
}

impl Default for TableStorage {
    fn default() -> TableStorage {
        TableStorage {
            root: "/warehouse".to_string(),
        }
    }
}

impl TableStorage {
    /// Directory of one table.
    pub fn table_dir(&self, table: &str) -> String {
        format!("{}/{}/", self.root, table)
    }

    /// Path of one part file.
    pub fn part_path(&self, table: &str, part: usize) -> String {
        format!("{}part-{part:05}", self.table_dir(table))
    }

    /// All part files of a table, sorted.
    pub fn parts(&self, dfs: &Dfs, table: &str) -> Vec<String> {
        dfs.list(&self.table_dir(table))
    }

    /// Total stored bytes of a table.
    ///
    /// # Errors
    /// Propagates DFS failures.
    pub fn table_bytes(&self, dfs: &Dfs, table: &str) -> Result<u64> {
        let mut total = 0;
        for p in self.parts(dfs, table) {
            total += dfs.len(&p)?;
        }
        Ok(total)
    }

    /// Delete all part files of a table (used by `INSERT OVERWRITE` and
    /// temp-table cleanup).
    pub fn drop_table(&self, dfs: &Dfs, table: &str) -> usize {
        dfs.delete_prefix(&self.table_dir(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::value::{DataType, Value};
    use hdm_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 256,
            replication: 1,
            num_nodes: 2,
        })
    }

    fn schema() -> Schema {
        Schema::new(vec![("k", DataType::Long), ("s", DataType::String)])
    }

    #[test]
    fn format_kind_parse() {
        assert_eq!(FormatKind::parse("ORCFILE"), Some(FormatKind::Orc));
        assert_eq!(FormatKind::parse("text"), Some(FormatKind::Text));
        assert_eq!(FormatKind::parse("parquet"), None);
    }

    #[test]
    fn both_formats_round_trip_via_trait() {
        for kind in [FormatKind::Text, FormatKind::Orc] {
            let dfs = dfs();
            let fmt = format_for(kind);
            assert_eq!(fmt.kind(), kind);
            let mut w = fmt.create(&dfs, "/t/part-0", &schema(), NodeId(0)).unwrap();
            let rows: Vec<Row> = (0..50)
                .map(|i| Row::from(vec![Value::Long(i), Value::Str(format!("row{i}"))]))
                .collect();
            for r in &rows {
                w.write_row(r).unwrap();
            }
            w.close().unwrap();
            let mut got = Vec::new();
            for s in fmt.splits(&dfs, "/t/part-0").unwrap() {
                got.extend(
                    fmt.read_split(&dfs, &s, &schema(), None, &[], None)
                        .unwrap()
                        .rows,
                );
            }
            assert_eq!(got, rows, "format {kind:?}");
        }
    }

    #[test]
    fn table_storage_layout() {
        let ts = TableStorage::default();
        assert_eq!(
            ts.part_path("lineitem", 3),
            "/warehouse/lineitem/part-00003"
        );
        let dfs = dfs();
        let fmt = format_for(FormatKind::Text);
        for i in 0..2 {
            let mut w = fmt
                .create(&dfs, &ts.part_path("t", i), &schema(), NodeId(0))
                .unwrap();
            w.write_row(&Row::from(vec![Value::Long(1), Value::Str("x".into())]))
                .unwrap();
            w.close().unwrap();
        }
        assert_eq!(ts.parts(&dfs, "t").len(), 2);
        assert!(ts.table_bytes(&dfs, "t").unwrap() > 0);
        assert_eq!(ts.drop_table(&dfs, "t"), 2);
        assert!(ts.parts(&dfs, "t").is_empty());
    }
}
