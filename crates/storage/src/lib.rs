#![warn(missing_docs)]

//! # hdm-storage
//!
//! Storage formats for the Hive-on-DataMPI reproduction.
//!
//! The paper evaluates TPC-H in two table formats (Section V-C):
//!
//! * **Text** — delimited rows, Hive's default (`TextInputFormat` +
//!   `LazySimpleSerDe` with `|`/`\x01` delimiters). Implemented in
//!   [`text`], including Hadoop's split semantics (a split starts at the
//!   first record boundary after its offset and reads through the record
//!   that crosses its end).
//! * **ORCFile** — the Optimized Row Columnar format. Implemented in
//!   [`orc`] as a faithful miniature: stripes, per-column encodings
//!   (RLE/delta varints for integers and dates, dictionary or direct for
//!   strings, bit-packed booleans), null bitmaps, per-stripe min/max
//!   statistics, column projection that only reads the projected byte
//!   ranges, and predicate pushdown that skips stripes whose statistics
//!   disprove a predicate. These are the mechanisms behind the paper's
//!   ~22% ORC-over-Text improvement.
//!
//! Intermediate stage outputs between chained MapReduce jobs use the
//! binary [`seq`] format (the analogue of Hadoop `SequenceFile`).
//!
//! All formats implement the [`format::FileFormat`] trait so the Hive
//! layer can treat tables uniformly; see [`format::TableStorage`] for the
//! `warehouse/<table>/part-N` directory convention.

pub mod cache;
pub mod format;
pub mod orc;
pub mod seq;
pub mod text;

pub use cache::{CacheStats, OrcDataCache};
pub use format::{
    format_for, ColumnarSource, ColumnarStripe, FileFormat, FormatKind, PlannedSplits, RowSink,
    RowSource, TableStorage,
};
pub use orc::{CmpOp, ColumnStats, Predicate};
