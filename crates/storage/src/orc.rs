//! A miniature ORCFile: stripes, columnar encodings, statistics, and
//! predicate pushdown.
//!
//! The paper's Section V-C attributes a ~22% improvement to ORCFile
//! because it "uses highly efficient way to store Hive data". The
//! mechanisms responsible are all present here:
//!
//! * **Stripes** — rows are buffered and flushed in row groups; a reader
//!   can process any subset of stripes, which is what makes column
//!   statistics useful for skipping.
//! * **Columnar layout** — each stripe stores one contiguous byte chunk
//!   per column, and the footer records each chunk's `(offset, len)`, so
//!   a projected read fetches only the projected columns' bytes.
//! * **Encodings** — integers/dates choose between direct zigzag varints
//!   and run-length encoding (whichever is smaller); strings choose
//!   between a dictionary and direct encoding; booleans are bit-packed;
//!   every column carries a null bitmap only when it has nulls.
//! * **Statistics + pushdown** — per-stripe min/max/null counts; a
//!   [`Predicate`] conjunction lets the reader prove a stripe empty and
//!   skip its bytes entirely.

use crate::format::{
    ColumnarSource, ColumnarStripe, FileFormat, FormatKind, PlannedSplits, RowSink, RowSource,
};
use hdm_common::codec;
use hdm_common::error::{HdmError, Result};
use hdm_common::row::{decode_value, encode_value, Row, Schema};
use hdm_common::value::{DataType, Value};
use hdm_dfs::{Dfs, DfsWriter, FileSplit, NodeId};

/// Magic trailer bytes.
pub const ORC_MAGIC: &[u8; 4] = b"HORC";

/// Comparison operator for pushed-down predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `col = lit`
    Eq,
    /// `col < lit`
    Lt,
    /// `col <= lit`
    Le,
    /// `col > lit`
    Gt,
    /// `col >= lit`
    Ge,
}

/// One pushed-down comparison: `column <op> literal`. A slice of these is
/// interpreted as a conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column index in the *table* schema.
    pub col: usize,
    /// Operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl Predicate {
    /// Whether a row failing this predicate's comparison because the
    /// column is NULL can still satisfy it. Every comparison operator is
    /// null-rejecting under SQL three-valued logic (`NULL <op> lit` is
    /// never true); a future `IS NULL` pushdown must return `false`
    /// here, which is what gates the all-null pruning in [`Self::admits`].
    pub fn is_null_rejecting(&self) -> bool {
        match self.op {
            CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => true,
        }
    }

    /// Could any row in a stripe with these column statistics satisfy
    /// this predicate? Conservative: returns `true` when unsure.
    ///
    /// An all-null column (`null_count >= rows`, which also covers an
    /// empty stripe) is prunable *only* when the predicate is
    /// null-rejecting — an unconditional skip would be unsound the
    /// moment a non-null-rejecting predicate (e.g. `IS NULL`) is pushed
    /// down.
    pub fn admits(&self, stats: &ColumnStats, rows: u64) -> bool {
        if self.value.is_null() {
            // `col <op> NULL` is never true for any row.
            return false;
        }
        if stats.null_count >= rows {
            return !self.is_null_rejecting();
        }
        let (min, max) = match (&stats.min, &stats.max) {
            (Some(mn), Some(mx)) => (mn, mx),
            _ => return true,
        };
        match self.op {
            CmpOp::Eq => {
                min.total_cmp(&self.value) != std::cmp::Ordering::Greater
                    && max.total_cmp(&self.value) != std::cmp::Ordering::Less
            }
            CmpOp::Lt => min.total_cmp(&self.value) == std::cmp::Ordering::Less,
            CmpOp::Le => min.total_cmp(&self.value) != std::cmp::Ordering::Greater,
            CmpOp::Gt => max.total_cmp(&self.value) == std::cmp::Ordering::Greater,
            CmpOp::Ge => max.total_cmp(&self.value) != std::cmp::Ordering::Less,
        }
    }
}

/// Per-column, per-stripe statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Smallest non-null value (total order), if any non-null was seen.
    pub min: Option<Value>,
    /// Largest non-null value (total order), if any non-null was seen.
    pub max: Option<Value>,
    /// Number of NULLs in the stripe's column.
    pub null_count: u64,
}

impl ColumnStats {
    fn update(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        match &self.min {
            Some(m) if m.total_cmp(v) != std::cmp::Ordering::Greater => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v) != std::cmp::Ordering::Less => {}
            _ => self.max = Some(v.clone()),
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        codec::write_varint(buf, self.null_count);
        match (&self.min, &self.max) {
            (Some(mn), Some(mx)) => {
                buf.push(1);
                encode_value(buf, mn);
                encode_value(buf, mx);
            }
            _ => buf.push(0),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<ColumnStats> {
        let null_count = codec::read_varint(buf)?;
        let has = {
            if buf.is_empty() {
                return Err(HdmError::Storage("truncated stats".into()));
            }
            let b = buf[0];
            *buf = &buf[1..];
            b
        };
        let (min, max) = if has == 1 {
            (Some(decode_value(buf)?), Some(decode_value(buf)?))
        } else {
            (None, None)
        };
        Ok(ColumnStats {
            min,
            max,
            null_count,
        })
    }
}

/// One column chunk's location within the file.
#[derive(Debug, Clone, PartialEq)]
struct ChunkInfo {
    offset: u64,
    len: u64,
    stats: ColumnStats,
}

/// One stripe's metadata.
#[derive(Debug, Clone, PartialEq)]
struct StripeInfo {
    /// Absolute offset of the stripe's first chunk (for split assignment).
    offset: u64,
    rows: u64,
    chunks: Vec<ChunkInfo>,
}

/// The ORC format. Stripes flush every `stripe_rows` rows.
#[derive(Debug, Clone, Copy)]
pub struct OrcFormat {
    /// Rows per stripe.
    pub stripe_rows: usize,
}

impl Default for OrcFormat {
    fn default() -> OrcFormat {
        OrcFormat { stripe_rows: 5000 }
    }
}

// ---------------------------------------------------------------------------
// Column chunk encoding
// ---------------------------------------------------------------------------

const ENC_LONG_DIRECT: u8 = 0;
const ENC_LONG_RLE: u8 = 1;
const ENC_DOUBLE: u8 = 2;
const ENC_STR_DIRECT: u8 = 3;
const ENC_STR_DICT: u8 = 4;
const ENC_BOOL: u8 = 5;

/// Encode one column of a stripe. `values` has one entry per row.
fn encode_chunk(ty: DataType, values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    // Null bitmap.
    let null_count = values.iter().filter(|v| v.is_null()).count();
    if null_count == 0 {
        out.push(0u8);
    } else {
        out.push(1u8);
        let mut bitmap = vec![0u8; values.len().div_ceil(8)];
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);
    }
    let present: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match ty {
        DataType::Long | DataType::Date => {
            let ints: Vec<i64> = present.iter().map(|v| v.as_i64().unwrap_or(0)).collect();
            let direct = encode_longs_direct(&ints);
            let rle = encode_longs_rle(&ints);
            if rle.len() < direct.len() {
                out.push(ENC_LONG_RLE);
                out.extend_from_slice(&rle);
            } else {
                out.push(ENC_LONG_DIRECT);
                out.extend_from_slice(&direct);
            }
        }
        DataType::Double => {
            out.push(ENC_DOUBLE);
            for v in &present {
                out.extend_from_slice(&v.as_f64().unwrap_or(0.0).to_le_bytes());
            }
        }
        DataType::String => {
            let strs: Vec<&str> = present.iter().map(|v| v.as_str().unwrap_or("")).collect();
            let mut dict: Vec<&str> = strs.clone();
            dict.sort_unstable();
            dict.dedup();
            if dict.len() * 2 < strs.len().max(1) {
                out.push(ENC_STR_DICT);
                codec::write_varint(&mut out, dict.len() as u64);
                for s in &dict {
                    codec::write_str(&mut out, s);
                }
                for s in &strs {
                    let idx = dict.binary_search(s).expect("dict entry");
                    codec::write_varint(&mut out, idx as u64);
                }
            } else {
                out.push(ENC_STR_DIRECT);
                for s in &strs {
                    codec::write_str(&mut out, s);
                }
            }
        }
        DataType::Boolean => {
            out.push(ENC_BOOL);
            let mut bits = vec![0u8; present.len().div_ceil(8)];
            for (i, v) in present.iter().enumerate() {
                if v.as_bool().unwrap_or(false) {
                    bits[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&bits);
        }
    }
    out
}

fn encode_longs_direct(ints: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ints.len() * 2);
    for &v in ints {
        codec::write_signed_varint(&mut out, v);
    }
    out
}

fn encode_longs_rle(ints: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ints.len() {
        let mut run = 1usize;
        while i + run < ints.len() && ints[i + run] == ints[i] {
            run += 1;
        }
        codec::write_varint(&mut out, run as u64);
        codec::write_signed_varint(&mut out, ints[i]);
        i += run;
    }
    out
}

/// Decode one column chunk back into per-row values.
fn decode_chunk(ty: DataType, rows: usize, raw: &[u8]) -> Result<Vec<Value>> {
    let mut buf = raw;
    if buf.is_empty() {
        return Err(HdmError::Storage("empty chunk".into()));
    }
    let has_nulls = buf[0] == 1;
    buf = &buf[1..];
    let mut nulls = vec![false; rows];
    if has_nulls {
        let nbytes = rows.div_ceil(8);
        if buf.len() < nbytes {
            return Err(HdmError::Storage("truncated null bitmap".into()));
        }
        for (i, null) in nulls.iter_mut().enumerate() {
            *null = buf[i / 8] & (1 << (i % 8)) != 0;
        }
        buf = &buf[nbytes..];
    }
    let present = nulls.iter().filter(|&&n| !n).count();
    if buf.is_empty() && present > 0 {
        return Err(HdmError::Storage("truncated chunk body".into()));
    }
    let enc = if present == 0 && buf.is_empty() {
        ENC_LONG_DIRECT
    } else {
        buf[0]
    };
    if !(present == 0 && buf.is_empty()) {
        buf = &buf[1..];
    }
    let mut data: Vec<Value> = Vec::with_capacity(present);
    match enc {
        ENC_LONG_DIRECT => {
            for _ in 0..present {
                let v = codec::read_signed_varint(&mut buf)?;
                data.push(mk_int(ty, v));
            }
        }
        ENC_LONG_RLE => {
            while data.len() < present {
                let run = codec::read_varint(&mut buf)? as usize;
                let v = codec::read_signed_varint(&mut buf)?;
                for _ in 0..run {
                    data.push(mk_int(ty, v));
                }
            }
        }
        ENC_DOUBLE => {
            for _ in 0..present {
                if buf.len() < 8 {
                    return Err(HdmError::Storage("truncated double chunk".into()));
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[..8]);
                buf = &buf[8..];
                data.push(Value::Double(f64::from_le_bytes(b)));
            }
        }
        ENC_STR_DIRECT => {
            for _ in 0..present {
                data.push(Value::Str(codec::read_str(&mut buf)?));
            }
        }
        ENC_STR_DICT => {
            let ndv = codec::read_varint(&mut buf)? as usize;
            let mut dict = Vec::with_capacity(ndv);
            for _ in 0..ndv {
                dict.push(codec::read_str(&mut buf)?);
            }
            for _ in 0..present {
                let idx = codec::read_varint(&mut buf)? as usize;
                let s = dict
                    .get(idx)
                    .ok_or_else(|| HdmError::Storage(format!("dict index {idx} out of range")))?;
                data.push(Value::Str(s.clone()));
            }
        }
        ENC_BOOL => {
            let nbytes = present.div_ceil(8);
            if buf.len() < nbytes {
                return Err(HdmError::Storage("truncated bool chunk".into()));
            }
            for i in 0..present {
                data.push(Value::Boolean(buf[i / 8] & (1 << (i % 8)) != 0));
            }
        }
        other => return Err(HdmError::Storage(format!("unknown encoding {other}"))),
    }
    // Re-insert nulls.
    let mut out = Vec::with_capacity(rows);
    let mut it = data.into_iter();
    for null in nulls {
        if null {
            out.push(Value::Null);
        } else {
            out.push(
                it.next()
                    .ok_or_else(|| HdmError::Storage("chunk underflow".into()))?,
            );
        }
    }
    Ok(out)
}

fn mk_int(ty: DataType, v: i64) -> Value {
    match ty {
        DataType::Date => Value::Date(v as i32),
        _ => Value::Long(v),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming ORC writer.
pub struct OrcSink {
    writer: DfsWriter,
    schema: Schema,
    stripe_rows: usize,
    buffer: Vec<Vec<Value>>, // column-major
    buffered: usize,
    stripes: Vec<StripeInfo>,
    offset: u64,
}

impl std::fmt::Debug for OrcSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrcSink")
            .field("buffered", &self.buffered)
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

impl OrcSink {
    fn flush_stripe(&mut self) -> Result<()> {
        if self.buffered == 0 {
            return Ok(());
        }
        let stripe_offset = self.offset;
        let mut chunks = Vec::with_capacity(self.schema.len());
        for (c, field) in self.schema.fields().iter().enumerate() {
            let values = &self.buffer[c];
            let mut stats = ColumnStats::default();
            for v in values {
                stats.update(v);
            }
            let encoded = encode_chunk(field.data_type, values);
            chunks.push(ChunkInfo {
                offset: self.offset,
                len: encoded.len() as u64,
                stats,
            });
            self.writer.write(&encoded)?;
            self.offset += encoded.len() as u64;
        }
        self.stripes.push(StripeInfo {
            offset: stripe_offset,
            rows: self.buffered as u64,
            chunks,
        });
        for col in &mut self.buffer {
            col.clear();
        }
        self.buffered = 0;
        Ok(())
    }
}

impl RowSink for OrcSink {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(HdmError::Storage(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        for (c, v) in row.values().iter().enumerate() {
            self.buffer[c].push(v.clone());
        }
        self.buffered += 1;
        if self.buffered >= self.stripe_rows {
            self.flush_stripe()?;
        }
        Ok(())
    }

    fn close(mut self: Box<Self>) -> Result<u64> {
        self.flush_stripe()?;
        // Footer.
        let mut footer = Vec::new();
        codec::write_varint(&mut footer, self.stripes.len() as u64);
        for s in &self.stripes {
            codec::write_varint(&mut footer, s.offset);
            codec::write_varint(&mut footer, s.rows);
            codec::write_varint(&mut footer, s.chunks.len() as u64);
            for c in &s.chunks {
                codec::write_varint(&mut footer, c.offset);
                codec::write_varint(&mut footer, c.len);
                c.stats.encode(&mut footer);
            }
        }
        self.writer.write(&footer)?;
        self.writer.write(&(footer.len() as u32).to_be_bytes())?;
        self.writer.write(ORC_MAGIC)?;
        let n = self.writer.bytes_written();
        self.writer.close()?;
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn read_footer(dfs: &Dfs, path: &str) -> Result<(Vec<StripeInfo>, u64)> {
    let file_len = dfs.len(path)?;
    if file_len < 8 {
        return Err(HdmError::Storage(format!("{path}: too short for ORC")));
    }
    // Planning-path reads (split enumeration happens in the driver, with
    // no task retry around it) — exempt from storage fault injection;
    // the stripes' chunk reads in `read_split` stay injected.
    let trailer = dfs.read_range_planning(path, file_len - 8, 8, None)?;
    if &trailer[4..] != ORC_MAGIC {
        return Err(HdmError::Storage(format!("{path}: bad ORC magic")));
    }
    let flen = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as u64;
    if flen + 8 > file_len {
        return Err(HdmError::Storage(format!("{path}: corrupt footer length")));
    }
    let raw = dfs.read_range_planning(path, file_len - 8 - flen, flen, None)?;
    let mut buf = &raw[..];
    let n_stripes = codec::read_varint(&mut buf)? as usize;
    let mut stripes = Vec::with_capacity(n_stripes);
    for _ in 0..n_stripes {
        let offset = codec::read_varint(&mut buf)?;
        let rows = codec::read_varint(&mut buf)?;
        let n_chunks = codec::read_varint(&mut buf)? as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let c_off = codec::read_varint(&mut buf)?;
            let c_len = codec::read_varint(&mut buf)?;
            let stats = ColumnStats::decode(&mut buf)?;
            chunks.push(ChunkInfo {
                offset: c_off,
                len: c_len,
                stats,
            });
        }
        stripes.push(StripeInfo {
            offset,
            rows,
            chunks,
        });
    }
    Ok((stripes, flen + 8))
}

impl OrcFormat {
    /// Shared core of `read_split` / `read_split_columns`: decode the
    /// split's admitted stripes column-wise. Stripe selection, predicate
    /// skipping, byte accounting, and row order are identical for both
    /// entry points by construction.
    fn read_stripes(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        schema: &Schema,
        projection: Option<&[usize]>,
        predicates: &[Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<ColumnarSource> {
        let (stripes, footer_bytes) = read_footer(dfs, &split.path)?;
        let mut bytes_read = footer_bytes;
        let cols: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..schema.len()).collect(),
        };
        let mut out = Vec::new();
        for stripe in &stripes {
            // A stripe belongs to the split containing its first byte.
            if stripe.offset < split.offset || stripe.offset >= split.end() {
                continue;
            }
            // Predicate pushdown: skip stripes the stats disprove. Split
            // planning already prunes these, but re-checking keeps the
            // reader sound when handed unpruned splits.
            let skip = predicates.iter().any(|p| {
                stripe
                    .chunks
                    .get(p.col)
                    .map(|c| !p.admits(&c.stats, stripe.rows))
                    .unwrap_or(false)
            });
            if skip {
                continue;
            }
            // Fetch only the projected columns' chunks.
            let mut columns: Vec<Vec<Value>> = Vec::with_capacity(cols.len());
            for &c in &cols {
                let chunk = stripe
                    .chunks
                    .get(c)
                    .ok_or_else(|| HdmError::Storage(format!("column {c} out of range")))?;
                let raw = dfs.read_range(&split.path, chunk.offset, chunk.len, reader_node)?;
                bytes_read += raw.len() as u64;
                let ty = schema.field(c).data_type;
                columns.push(decode_chunk(ty, stripe.rows as usize, &raw)?);
            }
            out.push(ColumnarStripe {
                columns,
                rows: stripe.rows as usize,
            });
        }
        Ok(ColumnarSource {
            stripes: out,
            bytes_read,
        })
    }
}

impl FileFormat for OrcFormat {
    fn kind(&self) -> FormatKind {
        FormatKind::Orc
    }

    fn create(
        &self,
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        node: NodeId,
    ) -> Result<Box<dyn RowSink>> {
        Ok(Box::new(OrcSink {
            writer: dfs.create(path, node)?,
            schema: schema.clone(),
            stripe_rows: self.stripe_rows.max(1),
            buffer: vec![Vec::new(); schema.len()],
            buffered: 0,
            stripes: Vec::new(),
            offset: 0,
        }))
    }

    fn read_split(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        schema: &Schema,
        projection: Option<&[usize]>,
        predicates: &[Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<RowSource> {
        let src = self.read_stripes(dfs, split, schema, projection, predicates, reader_node)?;
        let mut rows = Vec::new();
        for stripe in &src.stripes {
            for r in 0..stripe.rows {
                rows.push(Row::from(
                    stripe
                        .columns
                        .iter()
                        .map(|col| col[r].clone())
                        .collect::<Vec<_>>(),
                ));
            }
        }
        Ok(RowSource {
            rows,
            bytes_read: src.bytes_read,
        })
    }

    fn splits(&self, dfs: &Dfs, path: &str) -> Result<Vec<FileSplit>> {
        Ok(self.plan_splits(dfs, path, &[])?.splits)
    }

    fn plan_splits(
        &self,
        dfs: &Dfs,
        path: &str,
        predicates: &[Predicate],
    ) -> Result<PlannedSplits> {
        let (stripes, _) = read_footer(dfs, path)?;
        let block_size = dfs.config().block_size as u64;
        let block_splits = dfs.splits(path)?;
        let data_end = |s: &StripeInfo| {
            s.chunks
                .last()
                .map(|c| c.offset + c.len)
                .unwrap_or(s.offset)
        };
        // Group admitted stripes into runs of ~block_size bytes. A pruned
        // stripe ends the current run so no split covers its bytes.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut run: Option<(u64, u64)> = None;
        let mut pruned_stripes = 0u64;
        let mut pruned_rows = 0u64;
        for s in &stripes {
            let admitted = predicates.iter().all(|p| {
                s.chunks
                    .get(p.col)
                    .map(|c| p.admits(&c.stats, s.rows))
                    .unwrap_or(true)
            });
            if !admitted {
                pruned_stripes += 1;
                pruned_rows += s.rows;
                if let Some(r) = run.take() {
                    runs.push(r);
                }
                continue;
            }
            let end = data_end(s);
            match &mut run {
                None => run = Some((s.offset, end)),
                Some((start, run_end)) => {
                    if end - *start > block_size && *run_end > *start {
                        runs.push((*start, *run_end));
                        run = Some((s.offset, end));
                    } else {
                        *run_end = end;
                    }
                }
            }
        }
        if let Some(r) = run {
            runs.push(r);
        }
        let splits = runs
            .into_iter()
            .map(|(lo, hi)| {
                // Borrow locality from the DFS block containing `lo`.
                let hosts = block_splits
                    .iter()
                    .find(|b| b.offset <= lo && lo < b.offset + b.len.max(1))
                    .map(|b| b.hosts.clone())
                    .unwrap_or_default();
                FileSplit {
                    path: path.to_string(),
                    offset: lo,
                    len: hi - lo,
                    hosts,
                }
            })
            .collect();
        Ok(PlannedSplits {
            splits,
            pruned_stripes,
            pruned_rows,
        })
    }

    fn read_split_columns(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        schema: &Schema,
        projection: Option<&[usize]>,
        predicates: &[Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<Option<ColumnarSource>> {
        self.read_stripes(dfs, split, schema, projection, predicates, reader_node)
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 4096,
            replication: 1,
            num_nodes: 2,
        })
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", DataType::Long),
            ("flag", DataType::Boolean),
            ("name", DataType::String),
            ("price", DataType::Double),
            ("day", DataType::Date),
        ])
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::from(vec![
                    Value::Long(i as i64),
                    Value::Boolean(i % 3 == 0),
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("status-{}", i % 4)) // dictionary-friendly
                    },
                    Value::Double(i as f64 * 1.25),
                    Value::date_from_ymd(1994, 1 + (i % 12) as u32, 1 + (i % 28) as u32),
                ])
            })
            .collect()
    }

    fn write_file(dfs: &Dfs, path: &str, rows: &[Row], stripe_rows: usize) -> OrcFormat {
        let fmt = OrcFormat { stripe_rows };
        let mut sink = fmt.create(dfs, path, &schema(), NodeId(0)).unwrap();
        for r in rows {
            sink.write_row(r).unwrap();
        }
        Box::new(sink).close().unwrap();
        fmt
    }

    fn read_everything(fmt: &OrcFormat, dfs: &Dfs, path: &str) -> Vec<Row> {
        let mut out = Vec::new();
        for s in fmt.splits(dfs, path).unwrap() {
            out.extend(
                fmt.read_split(dfs, &s, &schema(), None, &[], None)
                    .unwrap()
                    .rows,
            );
        }
        out
    }

    #[test]
    fn round_trip_multiple_stripes() {
        let dfs = dfs();
        let rows = sample_rows(357);
        let fmt = write_file(&dfs, "/orc", &rows, 50);
        assert_eq!(read_everything(&fmt, &dfs, "/orc"), rows);
    }

    #[test]
    fn column_projection_reads_fewer_bytes() {
        let dfs = dfs();
        let rows = sample_rows(500);
        let fmt = write_file(&dfs, "/proj", &rows, 100);
        let splits = fmt.splits(&dfs, "/proj").unwrap();
        let mut full = 0u64;
        let mut narrow = 0u64;
        for s in &splits {
            full += fmt
                .read_split(&dfs, s, &schema(), None, &[], None)
                .unwrap()
                .bytes_read;
            let src = fmt
                .read_split(&dfs, s, &schema(), Some(&[0]), &[], None)
                .unwrap();
            narrow += src.bytes_read;
            for (i, r) in src.rows.iter().enumerate() {
                assert_eq!(r.values().len(), 1);
                assert!(matches!(r.get(0), Value::Long(_)), "row {i}");
            }
        }
        assert!(
            narrow * 2 < full,
            "projection should cut bytes: narrow={narrow}, full={full}"
        );
    }

    #[test]
    fn predicate_pushdown_skips_stripes() {
        let dfs = dfs();
        let rows = sample_rows(400); // ids 0..400, stripes of 100
        let fmt = write_file(&dfs, "/pred", &rows, 100);
        let splits = fmt.splits(&dfs, "/pred").unwrap();
        let pred = vec![Predicate {
            col: 0,
            op: CmpOp::Ge,
            value: Value::Long(350),
        }];
        let mut rows_read = 0usize;
        let mut pruned_bytes = 0u64;
        let mut full_bytes = 0u64;
        for s in &splits {
            let full = fmt.read_split(&dfs, s, &schema(), None, &[], None).unwrap();
            full_bytes += full.bytes_read;
            let src = fmt
                .read_split(&dfs, s, &schema(), None, &pred, None)
                .unwrap();
            pruned_bytes += src.bytes_read;
            rows_read += src.rows.len();
        }
        // Only the last stripe (ids 300..400) can match.
        assert_eq!(rows_read, 100);
        assert!(pruned_bytes < full_bytes);
    }

    #[test]
    fn pushdown_never_loses_matching_rows() {
        let dfs = dfs();
        let rows = sample_rows(300);
        let fmt = write_file(&dfs, "/sound", &rows, 64);
        let pred = vec![Predicate {
            col: 0,
            op: CmpOp::Eq,
            value: Value::Long(123),
        }];
        let mut got = Vec::new();
        for s in fmt.splits(&dfs, "/sound").unwrap() {
            got.extend(
                fmt.read_split(&dfs, &s, &schema(), None, &pred, None)
                    .unwrap()
                    .rows,
            );
        }
        // The stripe containing id 123 must be present; re-filtering gives
        // exactly one row.
        assert!(got.iter().any(|r| r.get(0) == &Value::Long(123)));
    }

    #[test]
    fn orc_is_smaller_than_text_for_repetitive_data() {
        let dfs = dfs();
        let rows: Vec<Row> = (0..2000)
            .map(|_| {
                Row::from(vec![
                    Value::Long(5), // constant: RLE shines
                    Value::Boolean(true),
                    Value::Str("AAAA".into()), // dictionary
                    Value::Double(1.0),
                    Value::date_from_ymd(1995, 1, 1),
                ])
            })
            .collect();
        let _ = write_file(&dfs, "/small.orc", &rows, 500);
        let text = crate::text::TextFormat::default();
        let mut sink = text.create(&dfs, "/big.txt", &schema(), NodeId(0)).unwrap();
        for r in &rows {
            sink.write_row(r).unwrap();
        }
        Box::new(sink).close().unwrap();
        let orc_len = dfs.len("/small.orc").unwrap();
        let txt_len = dfs.len("/big.txt").unwrap();
        assert!(
            orc_len * 2 < txt_len,
            "expected ORC much smaller: orc={orc_len}, text={txt_len}"
        );
    }

    #[test]
    fn all_null_column_round_trips() {
        let dfs = dfs();
        let s = Schema::new(vec![("x", DataType::String)]);
        let fmt = OrcFormat { stripe_rows: 10 };
        let mut sink = fmt.create(&dfs, "/nulls", &s, NodeId(0)).unwrap();
        for _ in 0..25 {
            sink.write_row(&Row::from(vec![Value::Null])).unwrap();
        }
        Box::new(sink).close().unwrap();
        let mut got = Vec::new();
        for sp in fmt.splits(&dfs, "/nulls").unwrap() {
            got.extend(fmt.read_split(&dfs, &sp, &s, None, &[], None).unwrap().rows);
        }
        assert_eq!(got.len(), 25);
        assert!(got.iter().all(|r| r.get(0).is_null()));
    }

    #[test]
    fn empty_file_has_no_splits() {
        let dfs = dfs();
        let fmt = OrcFormat::default();
        let sink = fmt.create(&dfs, "/empty", &schema(), NodeId(0)).unwrap();
        Box::new(sink).close().unwrap();
        assert!(fmt.splits(&dfs, "/empty").unwrap().is_empty());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let dfs = dfs();
        let mut w = dfs.create("/fake", NodeId(0)).unwrap();
        w.write(b"definitely not orc data").unwrap();
        w.close().unwrap();
        assert!(OrcFormat::default().splits(&dfs, "/fake").is_err());
    }

    #[test]
    fn stats_track_min_max_nulls() {
        let mut st = ColumnStats::default();
        st.update(&Value::Long(5));
        st.update(&Value::Null);
        st.update(&Value::Long(-3));
        st.update(&Value::Long(10));
        assert_eq!(st.min, Some(Value::Long(-3)));
        assert_eq!(st.max, Some(Value::Long(10)));
        assert_eq!(st.null_count, 1);
        let mut buf = Vec::new();
        st.encode(&mut buf);
        assert_eq!(ColumnStats::decode(&mut &buf[..]).unwrap(), st);
    }

    #[test]
    fn predicate_admits_logic() {
        let stats = ColumnStats {
            min: Some(Value::Long(10)),
            max: Some(Value::Long(20)),
            null_count: 0,
        };
        let p = |op, v: i64| Predicate {
            col: 0,
            op,
            value: Value::Long(v),
        };
        assert!(p(CmpOp::Eq, 15).admits(&stats, 100));
        assert!(!p(CmpOp::Eq, 25).admits(&stats, 100));
        assert!(!p(CmpOp::Lt, 10).admits(&stats, 100));
        assert!(p(CmpOp::Le, 10).admits(&stats, 100));
        assert!(!p(CmpOp::Gt, 20).admits(&stats, 100));
        assert!(p(CmpOp::Ge, 20).admits(&stats, 100));
        // All-null stripe can never satisfy a comparison.
        let all_null = ColumnStats {
            min: None,
            max: None,
            null_count: 100,
        };
        assert!(!p(CmpOp::Eq, 0).admits(&all_null, 100));
    }

    #[test]
    fn all_null_pruning_requires_null_rejecting_predicate() {
        // Regression: the all-null skip must be *derived from*
        // null-rejection, not hard-coded. Every comparison operator is
        // null-rejecting today, so all of them prune an all-null stripe —
        // but only because `is_null_rejecting` says so.
        let all_null = ColumnStats {
            min: None,
            max: None,
            null_count: 64,
        };
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let p = Predicate {
                col: 0,
                op,
                value: Value::Long(7),
            };
            assert!(p.is_null_rejecting(), "{op:?} must be null-rejecting");
            assert!(
                !p.admits(&all_null, 64),
                "{op:?} over an all-null stripe must prune"
            );
        }
        // An empty stripe (rows == 0, null_count == 0) is pruned by the
        // same check.
        let empty = ColumnStats::default();
        let p = Predicate {
            col: 0,
            op: CmpOp::Ge,
            value: Value::Long(0),
        };
        assert!(!p.admits(&empty, 0));
        // A NULL literal never matches any row, whatever the stats say.
        let populated = ColumnStats {
            min: Some(Value::Long(0)),
            max: Some(Value::Long(9)),
            null_count: 0,
        };
        let null_lit = Predicate {
            col: 0,
            op: CmpOp::Eq,
            value: Value::Null,
        };
        assert!(!null_lit.admits(&populated, 10));
    }

    #[test]
    fn plan_splits_prunes_and_matches_plain_splits() {
        let dfs = dfs();
        let rows = sample_rows(400); // ids 0..400, stripes of 100
        let fmt = write_file(&dfs, "/plan", &rows, 100);
        // No predicates: identical to splits().
        let plain = fmt.splits(&dfs, "/plan").unwrap();
        let planned = fmt.plan_splits(&dfs, "/plan", &[]).unwrap();
        assert_eq!(planned.splits, plain);
        assert_eq!(planned.pruned_stripes, 0);
        assert_eq!(planned.pruned_rows, 0);
        // id >= 350 admits only the last stripe; three stripes pruned at
        // planning time, and reading the planned splits still finds every
        // matching row.
        let pred = vec![Predicate {
            col: 0,
            op: CmpOp::Ge,
            value: Value::Long(350),
        }];
        let planned = fmt.plan_splits(&dfs, "/plan", &pred).unwrap();
        assert_eq!(planned.pruned_stripes, 3);
        assert_eq!(planned.pruned_rows, 300);
        let mut got = Vec::new();
        for s in &planned.splits {
            got.extend(
                fmt.read_split(&dfs, s, &schema(), None, &pred, None)
                    .unwrap()
                    .rows,
            );
        }
        let matching: Vec<&Row> = got
            .iter()
            .filter(|r| matches!(r.get(0), Value::Long(v) if *v >= 350))
            .collect();
        assert_eq!(matching.len(), 50);
    }

    #[test]
    fn columnar_read_transposes_to_row_read() {
        let dfs = dfs();
        let rows = sample_rows(357);
        let fmt = write_file(&dfs, "/cols", &rows, 50);
        for s in fmt.splits(&dfs, "/cols").unwrap() {
            let row_src = fmt
                .read_split(&dfs, &s, &schema(), Some(&[0, 2, 3]), &[], None)
                .unwrap();
            let col_src = fmt
                .read_split_columns(&dfs, &s, &schema(), Some(&[0, 2, 3]), &[], None)
                .unwrap()
                .expect("ORC reads columns natively");
            assert_eq!(col_src.bytes_read, row_src.bytes_read);
            let mut transposed = Vec::new();
            for stripe in &col_src.stripes {
                assert!(stripe.columns.iter().all(|c| c.len() == stripe.rows));
                for r in 0..stripe.rows {
                    transposed.push(Row::from(
                        stripe
                            .columns
                            .iter()
                            .map(|c| c[r].clone())
                            .collect::<Vec<_>>(),
                    ));
                }
            }
            assert_eq!(transposed, row_src.rows);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hdm_dfs::DfsConfig;
    use proptest::prelude::*;

    fn arb_value(ty: DataType) -> BoxedStrategy<Value> {
        match ty {
            DataType::Long => {
                prop_oneof![9 => any::<i64>().prop_map(Value::Long), 1 => Just(Value::Null)].boxed()
            }
            DataType::Double => {
                prop_oneof![9 => any::<f64>().prop_map(Value::Double), 1 => Just(Value::Null)]
                    .boxed()
            }
            DataType::String => {
                prop_oneof![9 => "[a-z]{0,12}".prop_map(Value::Str), 1 => Just(Value::Null)].boxed()
            }
            DataType::Date => {
                prop_oneof![9 => (-50_000i32..50_000).prop_map(Value::Date), 1 => Just(Value::Null)]
                    .boxed()
            }
            DataType::Boolean => {
                prop_oneof![9 => any::<bool>().prop_map(Value::Boolean), 1 => Just(Value::Null)]
                    .boxed()
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn chunk_round_trips(
            ty in prop_oneof![
                Just(DataType::Long),
                Just(DataType::Double),
                Just(DataType::String),
                Just(DataType::Date),
                Just(DataType::Boolean)
            ],
            seed in any::<u64>(),
            n in 0usize..200,
        ) {
            let mut runner = proptest::test_runner::TestRunner::deterministic();
            let mut values = Vec::with_capacity(n);
            let strat = arb_value(ty);
            let _ = seed;
            for _ in 0..n {
                values.push(strat.new_tree(&mut runner).unwrap().current());
            }
            let encoded = encode_chunk(ty, &values);
            let decoded = decode_chunk(ty, n, &encoded).unwrap();
            prop_assert_eq!(decoded.len(), values.len());
            for (a, b) in decoded.iter().zip(&values) {
                prop_assert_eq!(a.total_cmp(b), std::cmp::Ordering::Equal);
            }
        }

        #[test]
        fn file_round_trips_across_stripe_sizes(
            n in 1usize..150,
            stripe_rows in 1usize..40,
        ) {
            let dfs = Dfs::new(DfsConfig { block_size: 512, replication: 1, num_nodes: 2 });
            let schema = Schema::new(vec![("a", DataType::Long), ("b", DataType::String)]);
            let fmt = OrcFormat { stripe_rows };
            let mut sink = fmt.create(&dfs, "/pt", &schema, NodeId(0)).unwrap();
            let rows: Vec<Row> = (0..n)
                .map(|i| Row::from(vec![Value::Long(i as i64), Value::Str(format!("s{}", i % 5))]))
                .collect();
            for r in &rows {
                sink.write_row(r).unwrap();
            }
            Box::new(sink).close().unwrap();
            let mut got = Vec::new();
            for s in fmt.splits(&dfs, "/pt").unwrap() {
                got.extend(fmt.read_split(&dfs, &s, &schema, None, &[], None).unwrap().rows);
            }
            prop_assert_eq!(got, rows);
        }
    }

    /// Ground truth for the soundness proptest: does a concrete row
    /// satisfy a pushed-down comparison? Mirrors SQL three-valued logic
    /// and the engine's `total_cmp`-based comparisons (NaN included).
    fn row_matches(p: &Predicate, row: &Row) -> bool {
        let v = row.get(p.col);
        if v.is_null() || p.value.is_null() {
            return false;
        }
        let ord = v.total_cmp(&p.value);
        match p.op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }

    /// Cell strategies biased toward the pruning edge cases: repeated
    /// constants (min == max stripes), NaN doubles, and enough nulls
    /// that small stripes go all-null.
    fn soundness_cell(ty: DataType) -> BoxedStrategy<Value> {
        match ty {
            DataType::Long => prop_oneof![
                3 => Just(Value::Long(7)),
                4 => any::<i64>().prop_map(Value::Long),
                2 => Just(Value::Null),
            ]
            .boxed(),
            DataType::Double => prop_oneof![
                3 => Just(Value::Double(2.5)),
                2 => Just(Value::Double(f64::NAN)),
                3 => any::<f64>().prop_map(Value::Double),
                2 => Just(Value::Null),
            ]
            .boxed(),
            DataType::Date => prop_oneof![
                3 => Just(Value::Date(9000)),
                4 => (-20_000i32..20_000).prop_map(Value::Date),
                2 => Just(Value::Null),
            ]
            .boxed(),
            _ => Just(Value::Null).boxed(),
        }
    }

    fn soundness_pred(((col, op_idx, sel), (lv, dv, fv, is_null)): PredSpec) -> Predicate {
        let op = match op_idx {
            0 => CmpOp::Eq,
            1 => CmpOp::Lt,
            2 => CmpOp::Le,
            3 => CmpOp::Gt,
            _ => CmpOp::Ge,
        };
        // Bias literals toward the pool constants so Eq can actually hit.
        let value = if is_null {
            Value::Null
        } else {
            match col {
                0 => {
                    if sel < 2 {
                        Value::Long(7)
                    } else {
                        Value::Long(lv)
                    }
                }
                1 => match sel {
                    0 | 1 => Value::Double(2.5),
                    2 => Value::Double(f64::NAN),
                    _ => Value::Double(fv),
                },
                _ => {
                    if sel < 2 {
                        Value::Date(9000)
                    } else {
                        Value::Date(dv)
                    }
                }
            }
        };
        Predicate { col, op, value }
    }

    type PredSpec = ((usize, u8, u8), (i64, i32, f64, bool));

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn planning_prune_never_loses_matching_rows(
            cells in proptest::collection::vec(
                (
                    soundness_cell(DataType::Long),
                    soundness_cell(DataType::Double),
                    soundness_cell(DataType::Date),
                ),
                0..120,
            ),
            stripe_rows in 1usize..30,
            pred_specs in proptest::collection::vec(
                ((0usize..3, 0u8..5, 0u8..4),
                 (any::<i64>(), -20_000i32..20_000, any::<f64>(),
                  prop_oneof![1 => Just(true), 9 => Just(false)])),
                0..4,
            ),
        ) {
            let dfs = Dfs::new(DfsConfig { block_size: 512, replication: 1, num_nodes: 2 });
            let schema = Schema::new(vec![
                ("a", DataType::Long),
                ("b", DataType::Double),
                ("d", DataType::Date),
            ]);
            let rows: Vec<Row> = cells
                .into_iter()
                .map(|(a, b, d)| Row::from(vec![a, b, d]))
                .collect();
            let preds: Vec<Predicate> = pred_specs.into_iter().map(soundness_pred).collect();
            let fmt = OrcFormat { stripe_rows };
            let mut sink = fmt.create(&dfs, "/sound-prop", &schema, NodeId(0)).unwrap();
            for r in &rows {
                sink.write_row(r).unwrap();
            }
            Box::new(sink).close().unwrap();
            // Ground truth: filter the full file, no pruning anywhere.
            let expected: Vec<&Row> = rows
                .iter()
                .filter(|r| preds.iter().all(|p| row_matches(p, r)))
                .collect();
            // Planning-side pruning + reader-side pruning, then re-filter.
            let planned = fmt.plan_splits(&dfs, "/sound-prop", &preds).unwrap();
            prop_assert!(planned.pruned_rows <= rows.len() as u64);
            let mut got = Vec::new();
            for s in &planned.splits {
                got.extend(fmt.read_split(&dfs, s, &schema, None, &preds, None).unwrap().rows);
            }
            let got: Vec<&Row> = got
                .iter()
                .filter(|r| preds.iter().all(|p| row_matches(p, r)))
                .collect();
            // Compare via total order so NaN compares equal to itself.
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                prop_assert_eq!(g.values().len(), e.values().len());
                for (gv, ev) in g.values().iter().zip(e.values().iter()) {
                    prop_assert_eq!(gv.total_cmp(ev), std::cmp::Ordering::Equal);
                }
            }
        }
    }
}
