//! Binary key-value sequence files (the `SequenceFile` analogue).
//!
//! Chained MapReduce stages exchange intermediate tables through these
//! files: the upstream job's reducers write serialized rows, the
//! downstream job's mappers read them back. Records are length-prefixed
//! [`KvPair`]s behind a small magic header; records never span DFS block
//! boundaries in the read path because the writer records per-block
//! record counts — instead we keep it simple and robust: the file is
//! *block-aligned*, i.e. the writer pads nothing but splits are generated
//! per *record run* so a record is always read from the split that
//! contains its first byte (readers extend past the end exactly like the
//! text reader).

use crate::format::{FileFormat, FormatKind, RowSink, RowSource};
use crate::orc::Predicate;
use hdm_common::codec;
use hdm_common::error::{HdmError, Result};
use hdm_common::kv::KvPair;
use hdm_common::row::{Row, Schema};
use hdm_dfs::{Dfs, DfsWriter, FileSplit, NodeId};

/// Magic bytes at the start of every sequence file.
pub const SEQ_MAGIC: &[u8; 4] = b"HSEQ";

/// Writer for raw key-value records.
#[derive(Debug)]
pub struct SeqWriter {
    writer: DfsWriter,
    records: u64,
}

impl SeqWriter {
    /// Open a new sequence file.
    ///
    /// # Errors
    /// Fails if the path exists.
    pub fn create(dfs: &Dfs, path: &str, node: NodeId) -> Result<SeqWriter> {
        let mut writer = dfs.create(path, node)?;
        writer.write(SEQ_MAGIC)?;
        Ok(SeqWriter { writer, records: 0 })
    }

    /// Append one key-value record.
    ///
    /// # Errors
    /// Propagates DFS failures.
    pub fn append(&mut self, kv: &KvPair) -> Result<()> {
        let mut buf = Vec::with_capacity(kv.wire_size());
        kv.encode(&mut buf);
        self.writer.write(&buf)?;
        self.records += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Finish and publish.
    ///
    /// # Errors
    /// Propagates DFS failures.
    pub fn close(self) -> Result<u64> {
        let n = self.writer.bytes_written();
        self.writer.close()?;
        Ok(n)
    }
}

/// Read every record of a sequence file.
///
/// # Errors
/// Fails on a missing file, bad magic, or a corrupt record.
pub fn read_all(dfs: &Dfs, path: &str) -> Result<Vec<KvPair>> {
    let raw = dfs.read_all(path)?;
    if raw.len() < SEQ_MAGIC.len() || &raw[..4] != SEQ_MAGIC {
        return Err(HdmError::Storage(format!("bad sequence magic in {path}")));
    }
    let mut cursor = &raw[4..];
    let mut out = Vec::new();
    while !cursor.is_empty() {
        out.push(KvPair::decode(&mut cursor)?);
    }
    Ok(out)
}

/// The sequence format as a row-oriented [`FileFormat`]: rows are stored
/// as `(row_index, serialized_row)` pairs; the key is ignored on read.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqFormat;

/// Row-oriented sink over [`SeqWriter`].
#[derive(Debug)]
pub struct SeqSink {
    writer: SeqWriter,
}

impl RowSink for SeqSink {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        let mut vb = Vec::with_capacity(row.wire_size() + 8);
        row.encode(&mut vb);
        let mut kb = Vec::with_capacity(10);
        codec::write_varint(&mut kb, self.writer.records());
        self.writer.append(&KvPair::new(kb, vb))
    }

    fn close(self: Box<Self>) -> Result<u64> {
        self.writer.close()
    }
}

impl FileFormat for SeqFormat {
    fn kind(&self) -> FormatKind {
        // Sequence files are an internal format; report as Text for the
        // purposes of user-facing format selection.
        FormatKind::Text
    }

    fn create(
        &self,
        dfs: &Dfs,
        path: &str,
        _schema: &Schema,
        node: NodeId,
    ) -> Result<Box<dyn RowSink>> {
        Ok(Box::new(SeqSink {
            writer: SeqWriter::create(dfs, path, node)?,
        }))
    }

    fn read_split(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        _schema: &Schema,
        projection: Option<&[usize]>,
        _predicates: &[Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<RowSource> {
        // Sequence files are read whole-file per split run (we generate a
        // single split covering the file; see `splits`).
        if split.offset != 0 {
            return Ok(RowSource {
                rows: Vec::new(),
                bytes_read: 0,
            });
        }
        let len = dfs.len(&split.path)?;
        let raw = dfs.read_range(&split.path, 0, len, reader_node)?;
        if raw.len() < 4 || &raw[..4] != SEQ_MAGIC {
            return Err(HdmError::Storage(format!(
                "bad sequence magic in {}",
                split.path
            )));
        }
        let mut cursor = &raw[4..];
        let mut rows = Vec::new();
        while !cursor.is_empty() {
            let kv = KvPair::decode(&mut cursor)?;
            let row = Row::decode(&mut kv.value.clone())?;
            rows.push(match projection {
                Some(idx) => row.project(idx),
                None => row,
            });
        }
        Ok(RowSource {
            rows,
            bytes_read: raw.len() as u64,
        })
    }

    fn splits(&self, dfs: &Dfs, path: &str) -> Result<Vec<FileSplit>> {
        // One split per file: intermediate files are reducer-sized, so one
        // downstream map task per upstream reducer output — matching how
        // Hive chains stages through per-reducer part files.
        let len = dfs.len(path)?;
        let hosts = dfs
            .splits(path)?
            .first()
            .map(|s| s.hosts.clone())
            .unwrap_or_default();
        Ok(vec![FileSplit {
            path: path.to_string(),
            offset: 0,
            len,
            hosts,
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::value::{DataType, Value};
    use hdm_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 64,
            replication: 1,
            num_nodes: 2,
        })
    }

    #[test]
    fn kv_round_trip() {
        let dfs = dfs();
        let mut w = SeqWriter::create(&dfs, "/s", NodeId(0)).unwrap();
        let kvs: Vec<KvPair> = (0..20)
            .map(|i| KvPair::new(vec![i as u8], vec![i as u8; (i % 7) as usize]))
            .collect();
        for kv in &kvs {
            w.append(kv).unwrap();
        }
        assert_eq!(w.records(), 20);
        w.close().unwrap();
        assert_eq!(read_all(&dfs, "/s").unwrap(), kvs);
    }

    #[test]
    fn bad_magic_rejected() {
        let dfs = dfs();
        let mut w = dfs.create("/junk", NodeId(0)).unwrap();
        w.write(b"not a sequence file").unwrap();
        w.close().unwrap();
        assert!(read_all(&dfs, "/junk").is_err());
    }

    #[test]
    fn row_format_round_trip() {
        let dfs = dfs();
        let schema = Schema::new(vec![("a", DataType::Long), ("b", DataType::String)]);
        let fmt = SeqFormat;
        let mut sink = fmt.create(&dfs, "/rows", &schema, NodeId(1)).unwrap();
        let rows: Vec<Row> = (0..30)
            .map(|i| Row::from(vec![Value::Long(i), Value::Str(format!("v{i}"))]))
            .collect();
        for r in &rows {
            sink.write_row(r).unwrap();
        }
        Box::new(sink).close().unwrap();
        let splits = fmt.splits(&dfs, "/rows").unwrap();
        assert_eq!(splits.len(), 1);
        let src = fmt
            .read_split(&dfs, &splits[0], &schema, None, &[], None)
            .unwrap();
        assert_eq!(src.rows, rows);
        assert_eq!(src.bytes_read, dfs.len("/rows").unwrap());
    }

    #[test]
    fn empty_file_reads_empty() {
        let dfs = dfs();
        let w = SeqWriter::create(&dfs, "/empty", NodeId(0)).unwrap();
        w.close().unwrap();
        assert!(read_all(&dfs, "/empty").unwrap().is_empty());
    }
}
