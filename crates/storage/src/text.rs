//! Delimited text format with Hadoop `TextInputFormat` split semantics.
//!
//! Records are `\n`-terminated lines; fields are separated by a
//! configurable delimiter (`|` by default, matching TPC-H's dbgen output
//! and the hive-testbench table definitions). NULL is encoded as `\N`,
//! Hive's default null sequence.
//!
//! Split reading follows Hadoop exactly: a reader positioned at offset
//! `o > 0` discards bytes up to and including the first `\n` (that
//! partial record belongs to the previous split) and keeps reading past
//! its end until it finishes the record that straddles the boundary. The
//! property test below verifies that concatenating all splits of a file
//! yields exactly the original rows, once each.

use crate::format::{FileFormat, FormatKind, RowSink, RowSource};
use crate::orc::Predicate;
use hdm_common::error::{HdmError, Result};
use hdm_common::row::{Row, Schema};
use hdm_common::value::{DataType, Value};
use hdm_dfs::{Dfs, DfsWriter, FileSplit, NodeId};

/// Hive's default NULL escape in text tables.
pub const NULL_SEQUENCE: &str = "\\N";

/// The text format. `delimiter` defaults to `|`.
#[derive(Debug, Clone, Copy)]
pub struct TextFormat {
    /// Field separator byte.
    pub delimiter: u8,
}

impl Default for TextFormat {
    fn default() -> TextFormat {
        TextFormat { delimiter: b'|' }
    }
}

/// Render one row as a delimited line (no trailing newline).
pub fn format_row(row: &Row, delimiter: u8) -> String {
    let mut out = String::new();
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            out.push(delimiter as char);
        }
        match v {
            Value::Null => out.push_str(NULL_SEQUENCE),
            other => out.push_str(&other.to_string()),
        }
    }
    out
}

/// Parse one delimited line against a schema.
///
/// # Errors
/// Returns [`HdmError::Storage`] if the field count mismatches; cells that
/// fail to parse become NULL (Hive's lenient semantics).
pub fn parse_row(line: &str, schema: &Schema, delimiter: u8) -> Result<Row> {
    let parts: Vec<&str> = if schema.len() <= 1 {
        vec![line]
    } else {
        line.split(delimiter as char).collect()
    };
    if parts.len() != schema.len() {
        return Err(HdmError::Storage(format!(
            "field count mismatch: expected {}, got {} in {line:?}",
            schema.len(),
            parts.len()
        )));
    }
    let mut row = Row::new();
    for (raw, field) in parts.iter().zip(schema.fields()) {
        if *raw == NULL_SEQUENCE {
            row.push(Value::Null);
            continue;
        }
        let v = match field.data_type {
            DataType::Long => raw
                .trim()
                .parse::<i64>()
                .map(Value::Long)
                .unwrap_or(Value::Null),
            DataType::Double => raw
                .trim()
                .parse::<f64>()
                .map(Value::Double)
                .unwrap_or(Value::Null),
            DataType::String => Value::Str((*raw).to_string()),
            DataType::Date => Value::parse_date(raw).unwrap_or(Value::Null),
            DataType::Boolean => match raw.trim().to_ascii_lowercase().as_str() {
                "true" | "1" => Value::Boolean(true),
                "false" | "0" => Value::Boolean(false),
                _ => Value::Null,
            },
        };
        row.push(v);
    }
    Ok(row)
}

/// Writer for one text part file.
#[derive(Debug)]
pub struct TextSink {
    writer: DfsWriter,
    delimiter: u8,
    columns: usize,
}

impl RowSink for TextSink {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.columns {
            return Err(HdmError::Storage(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns
            )));
        }
        let mut line = format_row(row, self.delimiter);
        line.push('\n');
        self.writer.write(line.as_bytes())
    }

    fn close(self: Box<Self>) -> Result<u64> {
        let n = self.writer.bytes_written();
        self.writer.close()?;
        Ok(n)
    }
}

impl FileFormat for TextFormat {
    fn kind(&self) -> FormatKind {
        FormatKind::Text
    }

    fn create(
        &self,
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        node: NodeId,
    ) -> Result<Box<dyn RowSink>> {
        Ok(Box::new(TextSink {
            writer: dfs.create(path, node)?,
            delimiter: self.delimiter,
            columns: schema.len(),
        }))
    }

    fn read_split(
        &self,
        dfs: &Dfs,
        split: &FileSplit,
        schema: &Schema,
        projection: Option<&[usize]>,
        _predicates: &[Predicate],
        reader_node: Option<NodeId>,
    ) -> Result<RowSource> {
        let file_len = dfs.len(&split.path)?;
        // Hadoop's LineRecordReader trick: a split at offset > 0 starts
        // reading one byte early, so a record beginning exactly at the
        // split offset (previous byte is '\n') is correctly kept.
        let base = split.offset.saturating_sub(1);
        let limit = (split.end() - base) as usize; // records starting before this belong to us
        let mut raw = dfs.read_range(&split.path, base, split.end() - base, reader_node)?;
        let mut bytes_read = raw.len() as u64;
        // Absolute file position one past the bytes currently in `raw`.
        let mut fetched_until = split.end();
        const LOOKAHEAD: u64 = 4096;
        // Extend `raw` until a '\n' exists at or after relative position
        // `from`, or EOF. Returns true if more data was fetched.
        let extend =
            |raw: &mut Vec<u8>, fetched_until: &mut u64, bytes_read: &mut u64| -> Result<bool> {
                if *fetched_until >= file_len {
                    return Ok(false);
                }
                let want = LOOKAHEAD.min(file_len - *fetched_until);
                let extra = dfs.read_range(&split.path, *fetched_until, want, reader_node)?;
                *bytes_read += extra.len() as u64;
                *fetched_until += extra.len() as u64;
                raw.extend_from_slice(&extra);
                Ok(true)
            };

        // A split at offset > 0 skips the partial record at its head: those
        // bytes belong to the previous split's crossing record.
        let mut pos: usize = 0;
        if split.offset > 0 {
            loop {
                if let Some(p) = raw[pos..].iter().position(|&b| b == b'\n') {
                    pos += p + 1;
                    break;
                }
                pos = raw.len();
                if !extend(&mut raw, &mut fetched_until, &mut bytes_read)? {
                    // Split is the interior of one huge record: no rows.
                    return Ok(RowSource {
                        rows: Vec::new(),
                        bytes_read,
                    });
                }
            }
        }

        // Every record *starting* before the split end belongs to us, even
        // if it terminates past it.
        let mut rows = Vec::new();
        while pos < limit {
            let nl = loop {
                if let Some(p) = raw[pos..].iter().position(|&b| b == b'\n') {
                    break Some(pos + p);
                }
                if !extend(&mut raw, &mut fetched_until, &mut bytes_read)? {
                    break None; // last record has no trailing newline
                }
            };
            let end = nl.unwrap_or(raw.len());
            let line = std::str::from_utf8(&raw[pos..end]).map_err(|e| {
                HdmError::Storage(format!("non-utf8 text data in {}: {e}", split.path))
            })?;
            if !line.is_empty() {
                let row = parse_row(line, schema, self.delimiter)?;
                rows.push(match projection {
                    Some(idx) => row.project(idx),
                    None => row,
                });
            }
            match nl {
                Some(n) => pos = n + 1,
                None => break,
            }
        }
        Ok(RowSource { rows, bytes_read })
    }

    fn splits(&self, dfs: &Dfs, path: &str) -> Result<Vec<FileSplit>> {
        dfs.splits(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_dfs::DfsConfig;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", DataType::Long),
            ("name", DataType::String),
            ("price", DataType::Double),
            ("day", DataType::Date),
        ])
    }

    fn sample(i: i64) -> Row {
        Row::from(vec![
            Value::Long(i),
            Value::Str(format!("name-{i}")),
            Value::Double(i as f64 + 0.5),
            Value::date_from_ymd(1995, 1, (1 + (i % 28)) as u32),
        ])
    }

    #[test]
    fn line_round_trip() {
        let r = sample(7);
        let line = format_row(&r, b'|');
        assert_eq!(parse_row(&line, &schema(), b'|').unwrap(), r);
    }

    #[test]
    fn null_round_trip() {
        let r = Row::from(vec![
            Value::Null,
            Value::Str("x".into()),
            Value::Null,
            Value::Null,
        ]);
        let line = format_row(&r, b'|');
        assert_eq!(line, "\\N|x|\\N|\\N");
        assert_eq!(parse_row(&line, &schema(), b'|').unwrap(), r);
    }

    #[test]
    fn unparseable_cells_become_null() {
        let row = parse_row("abc|ok|xyz|baddate", &schema(), b'|').unwrap();
        assert_eq!(row.get(0), &Value::Null);
        assert_eq!(row.get(1), &Value::Str("ok".into()));
        assert_eq!(row.get(2), &Value::Null);
        assert_eq!(row.get(3), &Value::Null);
    }

    #[test]
    fn arity_mismatch_is_error() {
        assert!(parse_row("1|2", &schema(), b'|').is_err());
    }

    #[test]
    fn split_reading_covers_file_exactly_once() {
        // Small blocks force records to straddle split boundaries.
        let dfs = Dfs::new(DfsConfig {
            block_size: 37,
            replication: 1,
            num_nodes: 2,
        });
        let fmt = TextFormat::default();
        let mut sink = fmt.create(&dfs, "/f", &schema(), NodeId(0)).unwrap();
        let rows: Vec<Row> = (0..40).map(sample).collect();
        for r in &rows {
            sink.write_row(r).unwrap();
        }
        Box::new(sink).close().unwrap();

        let splits = fmt.splits(&dfs, "/f").unwrap();
        assert!(
            splits.len() > 3,
            "need multiple splits for the test to bite"
        );
        let mut got = Vec::new();
        for s in &splits {
            got.extend(
                fmt.read_split(&dfs, s, &schema(), None, &[], None)
                    .unwrap()
                    .rows,
            );
        }
        assert_eq!(got, rows);
    }

    #[test]
    fn projection_applies() {
        let dfs = Dfs::new(DfsConfig {
            block_size: 1024,
            replication: 1,
            num_nodes: 1,
        });
        let fmt = TextFormat::default();
        let mut sink = fmt.create(&dfs, "/p", &schema(), NodeId(0)).unwrap();
        sink.write_row(&sample(1)).unwrap();
        Box::new(sink).close().unwrap();
        let s = &fmt.splits(&dfs, "/p").unwrap()[0];
        let src = fmt
            .read_split(&dfs, s, &schema(), Some(&[1]), &[], None)
            .unwrap();
        assert_eq!(src.rows[0].values(), &[Value::Str("name-1".into())]);
    }

    #[test]
    fn single_column_schema_keeps_delimiters_in_value() {
        let s = Schema::new(vec![("line", DataType::String)]);
        let row = parse_row("a|b|c", &s, b'|').unwrap();
        assert_eq!(row.get(0), &Value::Str("a|b|c".into()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hdm_dfs::DfsConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn all_splits_union_to_original(
            n_rows in 1usize..80,
            block_size in 16usize..120,
            seed in any::<u64>(),
        ) {
            let schema = Schema::new(vec![("k", DataType::Long), ("v", DataType::String)]);
            let dfs = Dfs::new(DfsConfig { block_size, replication: 1, num_nodes: 2 });
            let fmt = TextFormat::default();
            let mut sink = fmt.create(&dfs, "/x", &schema, NodeId(0)).unwrap();
            let mut rows = Vec::new();
            let mut state = seed | 1;
            for i in 0..n_rows {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let len = (state % 17) as usize;
                let s: String = "abcdefghijklmnopq"[..len].to_string();
                let r = Row::from(vec![Value::Long(i as i64), Value::Str(s)]);
                sink.write_row(&r).unwrap();
                rows.push(r);
            }
            Box::new(sink).close().unwrap();
            let mut got = Vec::new();
            for s in fmt.splits(&dfs, "/x").unwrap() {
                got.extend(fmt.read_split(&dfs, &s, &schema, None, &[], None).unwrap().rows);
            }
            prop_assert_eq!(got, rows);
        }
    }
}
