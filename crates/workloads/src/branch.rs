//! A synthetic two-branch join DAG — the scheduler's overlap workload.
//!
//! The SQL planner emits left-deep linear chains (each stage reads the
//! previous stage's intermediate, join right sides are base-table scans
//! folded into the join stage), so compiled TPC-H plans never expose
//! two *stages* that can run at the same time. This module hand-builds
//! the diamond the paper's Q9-style supplier/part subtrees would
//! compile to under a branch-aware planner:
//!
//! ```text
//!   stage 0: filter-scan of `branch_left`  ─┐
//!                                           ├─→ stage 2: join (collect)
//!   stage 1: filter-scan of `branch_right` ─┘
//! ```
//!
//! Stages 0 and 1 are independent roots; under `hive.exec.parallel`
//! they overlap, and because each scans its full table while the
//! selective filter keeps only ~1/`FILTER_MODULUS` of the rows, the
//! branch scans dominate the join — a two-worker schedule approaches 2×
//! the sequential wall clock. The scheduler differential tests, the
//! chaos sibling-isolation property, and the `sched_overlap` bench all
//! run this plan through [`Driver::execute_raw_plan`].
//!
//! The module also builds the *opposite* shape: [`deep_chain_plan`], a
//! strictly linear scan → aggregate → … → aggregate → sort chain with
//! no sibling parallelism at all. A barrier scheduler can never overlap
//! any of its stages; every second it saves must come from
//! `hive.exec.pipelined` streaming partitions across the stage
//! boundaries — which makes it the discriminating workload for the
//! pipelined-execution differential tests and the `pipeline` bench.

use hdm_common::error::Result;
use hdm_common::row::{Row, Schema};
use hdm_common::value::{DataType, Value};
use hdm_core::ast::{BinOp, JoinKind};
use hdm_core::expr::RExpr;
use hdm_core::logical::AggFunc;
use hdm_core::physical::{
    AggSpec, InputSource, MapInput, QueryPlan, StageKind, StageOutput, StagePlan,
};
use hdm_core::Driver;

/// Left branch table.
pub const LEFT_TABLE: &str = "branch_left";
/// Right branch table.
pub const RIGHT_TABLE: &str = "branch_right";
/// A branch keeps the rows whose key is divisible by this.
pub const FILTER_MODULUS: i64 = 40;

/// Create and populate both branch tables with `rows_per_side`
/// deterministic rows each: `(k, v)` with `k` cycling a shared key
/// space so the join matches on every filter survivor.
///
/// # Errors
/// Table creation / load failures.
pub fn load(driver: &mut Driver, rows_per_side: usize) -> Result<()> {
    driver.execute(&format!("CREATE TABLE {LEFT_TABLE} (k BIGINT, v DOUBLE)"))?;
    driver.execute(&format!("CREATE TABLE {RIGHT_TABLE} (k BIGINT, w DOUBLE)"))?;
    let mk = |offset: f64| -> Vec<Row> {
        (0..rows_per_side)
            .map(|i| {
                Row::from(vec![
                    Value::Long(i as i64),
                    Value::Double(i as f64 * 0.5 + offset),
                ])
            })
            .collect()
    };
    driver.load_rows(LEFT_TABLE, &mk(0.0))?;
    driver.load_rows(RIGHT_TABLE, &mk(1000.0))?;
    Ok(())
}

/// One filter-scan branch stage: `SELECT k, col1 WHERE k % modulus = 0`
/// over `table`, written as an intermediate for the join to read.
fn branch_stage(id: usize, table: &str, value_name: &str) -> StagePlan {
    let filter = RExpr::Binary {
        op: BinOp::Eq,
        left: Box::new(RExpr::Binary {
            op: BinOp::Mod,
            left: Box::new(RExpr::Column(0)),
            right: Box::new(RExpr::Literal(Value::Long(FILTER_MODULUS))),
        }),
        right: Box::new(RExpr::Literal(Value::Long(0))),
    };
    StagePlan {
        id,
        inputs: vec![MapInput {
            source: InputSource::Table(table.to_string()),
            tag: 0,
            read_projection: None,
            read_schema: Schema::new(vec![
                ("k".to_string(), DataType::Long),
                (value_name.to_string(), DataType::Double),
            ]),
            pushdown: Vec::new(),
            filter: Some(filter),
            key_exprs: Vec::new(),
            value_exprs: vec![RExpr::Column(0), RExpr::Column(1)],
        }],
        kind: StageKind::MapOnly,
        output: StageOutput::Intermediate,
        out_names: vec!["k".to_string(), value_name.to_string()],
        out_types: vec![DataType::Long, DataType::Double],
        is_last: false,
    }
}

/// One tagged join input reading a branch stage's intermediate.
fn join_input(stage: usize, tag: u8, value_name: &str) -> MapInput {
    MapInput {
        source: InputSource::Stage(stage),
        tag,
        read_projection: None,
        read_schema: Schema::new(vec![
            ("k".to_string(), DataType::Long),
            (value_name.to_string(), DataType::Double),
        ]),
        pushdown: Vec::new(),
        filter: None,
        key_exprs: vec![RExpr::Column(0)],
        value_exprs: vec![RExpr::Column(0), RExpr::Column(1)],
    }
}

/// The three-stage diamond plan over the tables [`load`] creates.
pub fn diamond_plan() -> QueryPlan {
    let join = StagePlan {
        id: 2,
        inputs: vec![join_input(0, 0, "v"), join_input(1, 1, "w")],
        kind: StageKind::Join {
            kind: JoinKind::Inner,
            left_width: 2,
            right_width: 2,
            residual: None,
            // Concatenated row is [k, v, k, w].
            project: vec![RExpr::Column(0), RExpr::Column(1), RExpr::Column(3)],
        },
        output: StageOutput::Collect,
        out_names: vec!["k".to_string(), "v".to_string(), "w".to_string()],
        out_types: vec![DataType::Long, DataType::Double, DataType::Double],
        is_last: true,
    };
    QueryPlan {
        stages: vec![
            branch_stage(0, LEFT_TABLE, "v"),
            branch_stage(1, RIGHT_TABLE, "w"),
            join,
        ],
    }
}

/// Deep-chain table.
pub const DEEP_TABLE: &str = "deep_chain";

/// Create and populate the deep-chain table with `rows` deterministic
/// `(k, v)` rows whose keys are unique — every aggregate stage of
/// [`deep_chain_plan`] therefore preserves the full row count, keeping
/// data volume (and reduce parallelism) constant down the chain.
///
/// # Errors
/// Table creation / load failures.
pub fn load_deep(driver: &mut Driver, rows: usize) -> Result<()> {
    driver.execute(&format!("CREATE TABLE {DEEP_TABLE} (k BIGINT, v DOUBLE)"))?;
    let data: Vec<Row> = (0..rows)
        .map(|i| Row::from(vec![Value::Long(i as i64), Value::Double(i as f64 * 0.5)]))
        .collect();
    driver.load_rows(DEEP_TABLE, &data)?;
    Ok(())
}

/// The `(k, v)` schema every deep-chain stage boundary carries.
fn kv_schema(value_name: &str) -> Schema {
    Schema::new(vec![
        ("k".to_string(), DataType::Long),
        (value_name.to_string(), DataType::Double),
    ])
}

/// One chained aggregate stage: group the previous stage's `(k, v)`
/// intermediate by `k`, `SUM(v)`, and shift the result by +0.5 so every
/// link transforms the data (no stage is a pass-through the engine
/// could skip).
fn chain_aggregate(id: usize) -> StagePlan {
    StagePlan {
        id,
        inputs: vec![MapInput {
            source: InputSource::Stage(id - 1),
            tag: 0,
            read_projection: None,
            read_schema: kv_schema("v"),
            pushdown: Vec::new(),
            filter: None,
            key_exprs: vec![RExpr::Column(0)],
            value_exprs: vec![RExpr::Column(1)],
        }],
        kind: StageKind::Aggregate {
            num_keys: 1,
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                distinct: false,
            }],
            having: None,
            // Over the [k, sum] virtual row: (k, sum + 0.5).
            project: vec![
                RExpr::Column(0),
                RExpr::Binary {
                    op: BinOp::Add,
                    left: Box::new(RExpr::Column(1)),
                    right: Box::new(RExpr::Literal(Value::Double(0.5))),
                },
            ],
        },
        output: StageOutput::Intermediate,
        out_names: vec!["k".to_string(), "v".to_string()],
        out_types: vec![DataType::Long, DataType::Double],
        is_last: false,
    }
}

/// A strictly linear chain over [`DEEP_TABLE`]:
///
/// ```text
///   stage 0: map-only scan
///     → stage 1..=aggregates: group-by-k SUM(v) + 0.5
///       → stage aggregates+1: global sort by k (collect)
/// ```
///
/// `aggregates` is clamped to ≥ 2, so the plan always has at least four
/// dependent stages and three intermediate hand-offs. Every edge has
/// exactly one non-map-only consumer — with `hive.exec.pipelined` on
/// the DataMPI engine streams all of them.
pub fn deep_chain_plan(aggregates: usize) -> QueryPlan {
    let aggregates = aggregates.max(2);
    let mut stages = vec![StagePlan {
        id: 0,
        inputs: vec![MapInput {
            source: InputSource::Table(DEEP_TABLE.to_string()),
            tag: 0,
            read_projection: None,
            read_schema: kv_schema("v"),
            pushdown: Vec::new(),
            filter: None,
            key_exprs: Vec::new(),
            value_exprs: vec![RExpr::Column(0), RExpr::Column(1)],
        }],
        kind: StageKind::MapOnly,
        output: StageOutput::Intermediate,
        out_names: vec!["k".to_string(), "v".to_string()],
        out_types: vec![DataType::Long, DataType::Double],
        is_last: false,
    }];
    for id in 1..=aggregates {
        stages.push(chain_aggregate(id));
    }
    stages.push(StagePlan {
        id: aggregates + 1,
        inputs: vec![MapInput {
            source: InputSource::Stage(aggregates),
            tag: 0,
            read_projection: None,
            read_schema: kv_schema("v"),
            pushdown: Vec::new(),
            filter: None,
            key_exprs: vec![RExpr::Column(0)],
            value_exprs: vec![RExpr::Column(0), RExpr::Column(1)],
        }],
        kind: StageKind::Sort {
            ascending: vec![true],
            limit: None,
        },
        output: StageOutput::Collect,
        out_names: vec!["k".to_string(), "v".to_string()],
        out_types: vec![DataType::Long, DataType::Double],
        is_last: true,
    });
    QueryPlan { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_core::EngineKind;

    #[test]
    fn diamond_has_two_roots_and_a_join() {
        let plan = diamond_plan();
        assert_eq!(plan.dag(), vec![vec![], vec![], vec![0, 1]]);
    }

    #[test]
    fn deep_chain_is_a_strict_line_of_at_least_four_stages() {
        let plan = deep_chain_plan(3);
        assert_eq!(plan.dag(), vec![vec![], vec![0], vec![1], vec![2], vec![3]]);
        // Clamp: even a degenerate request keeps four dependent stages.
        assert_eq!(deep_chain_plan(0).stages.len(), 4);
    }

    #[test]
    fn deep_chain_results_agree_on_both_engines() {
        let mut d = Driver::in_memory();
        load_deep(&mut d, 300).unwrap();
        let aggregates = 3;
        let plan = deep_chain_plan(aggregates);
        for engine in [EngineKind::Hadoop, EngineKind::DataMpi] {
            let r = d.execute_raw_plan(&plan, engine).unwrap();
            assert_eq!(r.rows.len(), 300, "{engine:?}");
            // Keys are unique, so each SUM passes v through and each
            // stage adds 0.5: row k is (k, 0.5·k + 0.5·aggregates).
            for (i, line) in r.to_lines().iter().enumerate() {
                let mut cells = line.split('\t');
                let k: i64 = cells.next().unwrap().parse().unwrap();
                let v: f64 = cells.next().unwrap().parse().unwrap();
                assert_eq!(k, i as i64, "{engine:?} row {i}");
                let expected = i as f64 * 0.5 + 0.5 * aggregates as f64;
                assert!(
                    (v - expected).abs() < 1e-9,
                    "{engine:?} row {i}: {v} != {expected}"
                );
            }
        }
    }

    #[test]
    fn diamond_joins_filter_survivors_on_both_engines() {
        let mut d = Driver::in_memory();
        load(&mut d, 400).unwrap();
        let plan = diamond_plan();
        let expected = 400 / FILTER_MODULUS as usize; // k ∈ {0, 40, …, 360}
        for engine in [EngineKind::Hadoop, EngineKind::DataMpi] {
            let r = d.execute_raw_plan(&plan, engine).unwrap();
            assert_eq!(r.rows.len(), expected, "{engine:?}");
            assert_eq!(r.columns, vec!["k", "v", "w"]);
            let mut lines = r.to_lines();
            lines.sort();
            assert!(lines.iter().all(|l| {
                let k: i64 = l.split('\t').next().unwrap().parse().unwrap();
                k % FILTER_MODULUS == 0
            }));
        }
    }
}
