//! Intel HiBench Hive workloads: generators and queries.
//!
//! HiBench's Hive suite uses two web-log tables — `rankings(pageURL,
//! pageRank, avgDuration)` and `uservisits(sourceIP, destURL, visitDate,
//! adRevenue, …)` — whose reference skew is Zipfian (the paper:
//! "The data set of HiBench conforms to the Zipfian distribution").
//! The two micro-queries are AGGREGATE (group `uservisits` by source IP)
//! and JOIN (a three-job join + aggregation + global order).
//!
//! A TeraGen record generator is included as the *uniform* baseline the
//! paper contrasts against in Figure 2(a)/(b).

use crate::zipf::Zipf;
use hdm_common::error::Result;
use hdm_common::row::Row;
use hdm_common::value::Value;
use hdm_core::Driver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizing for the HiBench generator.
#[derive(Debug, Clone, Copy)]
pub struct HiBenchConfig {
    /// Rows in `rankings`.
    pub rankings: usize,
    /// Rows in `uservisits`.
    pub uservisits: usize,
    /// Distinct source IPs (`uservisits` groups).
    pub ips: usize,
    /// Zipf exponent for IP / URL popularity.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HiBenchConfig {
    fn default() -> HiBenchConfig {
        HiBenchConfig {
            rankings: 2_000,
            uservisits: 30_000,
            // HiBench draws source IPs from a large pool: most groups
            // are small, so map-side aggregation cannot collapse the
            // shuffle (that is what makes AGGREGATE communication-heavy).
            ips: 8_000,
            theta: 1.0,
            seed: 20150701,
        }
    }
}

/// Generate the `rankings` rows.
pub fn generate_rankings(cfg: &HiBenchConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.rankings)
        .map(|i| {
            Row::from(vec![
                Value::Str(format!("url{i:07}")),
                Value::Long(rng.random_range(1..10_000)),
                Value::Long(rng.random_range(1..10)),
            ])
        })
        .collect()
}

/// Generate the `uservisits` rows (Zipf-skewed source IPs and URL
/// references into `rankings`).
pub fn generate_uservisits(cfg: &HiBenchConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
    let ip_dist = Zipf::new(cfg.ips.max(1), cfg.theta);
    let url_dist = Zipf::new(cfg.rankings.max(1), cfg.theta);
    let start = match Value::date_from_ymd(1999, 1, 1) {
        Value::Date(d) => d,
        _ => unreachable!(),
    };
    (0..cfg.uservisits)
        .map(|_| {
            let ip = ip_dist.sample(&mut rng);
            let url = url_dist.sample(&mut rng) - 1;
            Row::from(vec![
                Value::Str(format!(
                    "{}.{}.{}.{}",
                    ip % 223 + 1,
                    (ip / 7) % 256,
                    (ip / 3) % 256,
                    ip % 256
                )),
                Value::Str(format!("url{url:07}")),
                Value::Date(start + rng.random_range(0..730)),
                Value::Double((rng.random_range(1.0f64..1000.0) * 100.0).round() / 100.0),
                // User-agent strings vary wildly in length, which is what
                // makes fixed-size splits carry varying record counts —
                // the irregular per-task work behind the paper's Fig 2(a).
                Value::Str(format!(
                    "Mozilla/5.0 ({})",
                    "x".repeat(rng.random_range(5..140))
                )),
                Value::Str(format!("C{:03}", ip % 200)),
                Value::Str("en".to_string()),
                Value::Str(format!("word{}", rng.random_range(0..100))),
                Value::Long(rng.random_range(1..10)),
            ])
        })
        .collect()
}

/// Create and load both HiBench tables. Returns total bytes stored.
///
/// # Errors
/// Propagates DDL/load failures.
pub fn load(driver: &mut Driver, cfg: &HiBenchConfig) -> Result<u64> {
    driver
        .execute("CREATE TABLE rankings (pageurl STRING, pagerank BIGINT, avgduration BIGINT)")?;
    driver.execute(
        "CREATE TABLE uservisits (sourceip STRING, desturl STRING, visitdate DATE, \
         adrevenue DOUBLE, useragent STRING, countrycode STRING, languagecode STRING, \
         searchword STRING, duration BIGINT)",
    )?;
    let mut total = driver.load_rows("rankings", &generate_rankings(cfg))?;
    total += driver.load_rows("uservisits", &generate_uservisits(cfg))?;
    Ok(total)
}

/// The HiBench AGGREGATE query (one MapReduce job).
pub fn aggregate_query() -> &'static str {
    "SELECT sourceip, SUM(adrevenue) AS sumadrevenue FROM uservisits GROUP BY sourceip"
}

/// The HiBench JOIN query (three jobs: join, aggregate, order).
pub fn join_query() -> &'static str {
    "SELECT sourceip, SUM(adrevenue) AS totalrevenue, AVG(pagerank) AS avgpagerank \
     FROM rankings r \
     JOIN uservisits uv ON r.pageurl = uv.desturl \
     WHERE uv.visitdate BETWEEN DATE '1999-01-01' AND DATE '2000-01-01' \
     GROUP BY sourceip \
     ORDER BY totalrevenue DESC LIMIT 1"
}

/// One TeraGen record: 10-byte key, 90-byte payload (printable).
pub fn generate_teragen(records: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..records)
        .map(|i| {
            let key: String = (0..10)
                .map(|_| (b'A' + rng.random_range(0..26u8)) as char)
                .collect();
            Row::from(vec![
                Value::Str(key),
                Value::Str(format!("{i:010}{}", "X".repeat(78))),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn cfg() -> HiBenchConfig {
        HiBenchConfig {
            rankings: 100,
            uservisits: 2000,
            ips: 50,
            theta: 1.0,
            seed: 3,
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(generate_rankings(&cfg()), generate_rankings(&cfg()));
        assert_eq!(generate_uservisits(&cfg()), generate_uservisits(&cfg()));
        assert_eq!(generate_teragen(10, 1), generate_teragen(10, 1));
    }

    #[test]
    fn uservisits_ips_are_zipf_skewed() {
        let rows = generate_uservisits(&cfg());
        let mut counts: HashMap<String, usize> = HashMap::new();
        for r in &rows {
            *counts.entry(r.get(0).to_string()).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let mean = rows.len() / counts.len();
        assert!(
            max > mean * 4,
            "expected heavy head: max={max}, mean={mean}"
        );
    }

    #[test]
    fn desturls_reference_rankings() {
        let rankings = generate_rankings(&cfg());
        let urls: std::collections::HashSet<String> =
            rankings.iter().map(|r| r.get(0).to_string()).collect();
        for uv in generate_uservisits(&cfg()) {
            assert!(urls.contains(&uv.get(1).to_string()));
        }
    }

    #[test]
    fn queries_parse_and_load_works() {
        let mut d = Driver::in_memory();
        let bytes = load(&mut d, &cfg()).unwrap();
        assert!(bytes > 0);
        assert!(hdm_core::parser::parse_script(aggregate_query()).is_ok());
        assert!(hdm_core::parser::parse_script(join_query()).is_ok());
    }

    #[test]
    fn teragen_records_are_100ish_bytes() {
        for r in generate_teragen(5, 9) {
            assert_eq!(r.get(0).to_string().len(), 10);
            assert_eq!(r.get(1).to_string().len(), 88);
        }
    }
}
