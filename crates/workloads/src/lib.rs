#![warn(missing_docs)]

//! # hdm-workloads
//!
//! The paper's workloads, regenerated:
//!
//! * [`tpch`] — a deterministic TPC-H `dbgen` port (all 8 tables with
//!   the spec's distributions: key structures, date ranges, text pools,
//!   comment grammar with the probe phrases Q9/Q13/Q14/Q16/Q20 filter
//!   on) plus the **22 queries** rewritten for this HiveQL dialect the
//!   same way the paper rewrote them for Hive ("the queries are modified
//!   to adapt for the HiveQL"): correlated subqueries become temp-table
//!   scripts, `EXISTS`/`NOT EXISTS` become semi/anti joins.
//! * [`hibench`] — the Intel HiBench Hive workloads: `rankings` and
//!   `uservisits` generators with the benchmark's Zipfian source-IP
//!   skew, the AGGREGATE and JOIN queries, and a TeraGen record
//!   generator (the uniform baseline of the paper's Figure 2).
//! * [`zipf`] — the Zipf sampler behind HiBench's skew.
//! * [`branch`] — a hand-built two-branch join DAG (the stage
//!   scheduler's overlap workload; compiled SQL plans are linear).
//!
//! Everything is seeded and deterministic: the same `(scale, seed)`
//! always produces byte-identical tables, which the engine-equivalence
//! and reproduction tests rely on.

pub mod branch;
pub mod hibench;
pub mod tpch;
pub mod zipf;

/// Nominal dataset sizes used across the paper's figures, in gigabytes.
pub const PAPER_SIZES_GB: [u64; 4] = [5, 10, 20, 40];

/// Convert a nominal "paper gigabytes" size into the scale multiplier
/// applied to volumes measured at a local run of `local_bytes` input.
pub fn scale_to_nominal(local_bytes: u64, nominal_gb: u64) -> f64 {
    if local_bytes == 0 {
        1.0
    } else {
        (nominal_gb as f64 * 1e9) / local_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_math() {
        assert_eq!(scale_to_nominal(0, 20), 1.0);
        let s = scale_to_nominal(1_000_000, 20);
        assert!((s - 20_000.0).abs() < 1e-6);
    }
}
