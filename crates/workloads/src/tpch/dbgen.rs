//! A deterministic `dbgen` port.
//!
//! Faithful to the distributions the 22 queries are sensitive to: key
//! structures and referential integrity, the order/ship/commit/receipt
//! date relationships, return-flag and line-status rules, the brand /
//! type / container / segment / priority / ship-mode text pools, the
//! four-suppliers-per-part `partsupp` layout, phone numbers whose
//! country code is `nationkey + 10` (Q22), and comments that embed the
//! probe phrases Q13/Q16 filter on at roughly the spec's rates. Scale
//! factor 1.0 corresponds to TPC-H SF 1 row counts.

use hdm_common::row::Row;
use hdm_common::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const TYPE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: [&str; 24] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "forest",
    "frosted",
    "green",
    "honeydew",
    "hot",
    "indian",
];
const WORDS: [&str; 20] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "requests",
    "accounts",
    "packages",
    "instructions",
    "theodolites",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "dependencies",
    "platelets",
    "realms",
    "courts",
    "asymptotes",
];
/// `(name, region)` for the 25 nations (TPC-H Appendix A).
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Earliest order date (1992-01-01) as days since epoch.
fn startdate() -> i32 {
    match Value::date_from_ymd(1992, 1, 1) {
        Value::Date(d) => d,
        _ => unreachable!(),
    }
}
/// Order dates span `[startdate, 1998-08-02]`.
const ORDER_SPAN_DAYS: i32 = 2406;

fn comment(rng: &mut StdRng, probe: Option<&str>) -> String {
    let n = rng.random_range(3..8);
    let mut words: Vec<&str> = (0..n)
        .map(|_| WORDS[rng.random_range(0..WORDS.len())])
        .collect();
    if let Some(p) = probe {
        let at = rng.random_range(0..=words.len());
        words.insert(at, p);
    }
    words.join(" ")
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.random_range(lo..hi) * 100.0).round() / 100.0
}

/// Generate all eight tables at `scale` (1.0 = SF 1) from `seed`.
pub fn generate(scale: f64, seed: u64) -> HashMap<&'static str, Vec<Row>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = |base: u64| -> i64 { ((base as f64 * scale).round() as i64).max(1) };
    let n_supplier = count(10_000);
    let n_part = count(200_000);
    let n_customer = count(150_000);
    let n_orders = count(1_500_000);

    let mut out: HashMap<&'static str, Vec<Row>> = HashMap::new();

    // ---- region / nation ---------------------------------------------------
    out.insert(
        "region",
        REGIONS
            .iter()
            .enumerate()
            .map(|(k, name)| {
                Row::from(vec![
                    Value::Long(k as i64),
                    Value::Str(name.to_string()),
                    Value::Str(comment(&mut rng, None)),
                ])
            })
            .collect(),
    );
    out.insert(
        "nation",
        NATIONS
            .iter()
            .enumerate()
            .map(|(k, (name, region))| {
                Row::from(vec![
                    Value::Long(k as i64),
                    Value::Str(name.to_string()),
                    Value::Long(*region),
                    Value::Str(comment(&mut rng, None)),
                ])
            })
            .collect(),
    );

    // ---- supplier -----------------------------------------------------------
    let mut supplier = Vec::with_capacity(n_supplier as usize);
    for k in 1..=n_supplier {
        let nation = rng.random_range(0..25i64);
        // ~0.05% of suppliers carry the Q16 complaint phrase.
        let probe = if rng.random_range(0..2000) == 0 {
            Some("Customer Complaints")
        } else {
            None
        };
        supplier.push(Row::from(vec![
            Value::Long(k),
            Value::Str(format!("Supplier#{k:09}")),
            Value::Str(format!("addr-{}", rng.random_range(0..100_000))),
            Value::Long(nation),
            Value::Str(format!(
                "{}-{}-{}-{}",
                nation + 10,
                rng.random_range(100..1000),
                rng.random_range(100..1000),
                rng.random_range(1000..10_000)
            )),
            Value::Double(money(&mut rng, -999.99, 9999.99)),
            Value::Str(comment(&mut rng, probe)),
        ]));
    }
    out.insert("supplier", supplier);

    // ---- customer -----------------------------------------------------------
    let mut customer = Vec::with_capacity(n_customer as usize);
    for k in 1..=n_customer {
        let nation = rng.random_range(0..25i64);
        customer.push(Row::from(vec![
            Value::Long(k),
            Value::Str(format!("Customer#{k:09}")),
            Value::Str(format!("addr-{}", rng.random_range(0..100_000))),
            Value::Long(nation),
            Value::Str(format!(
                "{}-{}-{}-{}",
                nation + 10,
                rng.random_range(100..1000),
                rng.random_range(100..1000),
                rng.random_range(1000..10_000)
            )),
            Value::Double(money(&mut rng, -999.99, 9999.99)),
            Value::Str(SEGMENTS[rng.random_range(0..SEGMENTS.len())].to_string()),
            Value::Str(comment(&mut rng, None)),
        ]));
    }
    out.insert("customer", customer);

    // ---- part ------------------------------------------------------------------
    let mut part = Vec::with_capacity(n_part as usize);
    for k in 1..=n_part {
        let m = rng.random_range(1..=5);
        let brand = format!("Brand#{m}{}", rng.random_range(1..=5));
        let ty = format!(
            "{} {} {}",
            TYPE_1[rng.random_range(0..TYPE_1.len())],
            TYPE_2[rng.random_range(0..TYPE_2.len())],
            TYPE_3[rng.random_range(0..TYPE_3.len())]
        );
        let container = format!(
            "{} {}",
            CONTAINER_1[rng.random_range(0..CONTAINER_1.len())],
            CONTAINER_2[rng.random_range(0..CONTAINER_2.len())]
        );
        // p_name: five distinct-ish colors (Q9 '%green%', Q20 'forest%').
        let name: Vec<&str> = (0..5)
            .map(|_| COLORS[rng.random_range(0..COLORS.len())])
            .collect();
        part.push(Row::from(vec![
            Value::Long(k),
            Value::Str(name.join(" ")),
            Value::Str(format!("Manufacturer#{m}")),
            Value::Str(brand),
            Value::Str(ty),
            Value::Long(rng.random_range(1..=50)),
            Value::Str(container),
            Value::Double(
                (90_000.0 + (k % 200_001) as f64 / 10.0 + 100.0 * (k % 1000) as f64) / 100.0,
            ),
            Value::Str(comment(&mut rng, None)),
        ]));
    }
    out.insert("part", part);

    // ---- partsupp: four suppliers per part (spec layout) ------------------------
    let mut partsupp = Vec::with_capacity(4 * n_part as usize);
    for p in 1..=n_part {
        for i in 0..4i64 {
            let s = (p + i * (n_supplier / 4 + 1)) % n_supplier + 1;
            partsupp.push(Row::from(vec![
                Value::Long(p),
                Value::Long(s),
                Value::Long(rng.random_range(1..10_000)),
                Value::Double(money(&mut rng, 1.0, 1000.0)),
                Value::Str(comment(&mut rng, None)),
            ]));
        }
    }
    out.insert("partsupp", partsupp);

    // ---- orders + lineitem -------------------------------------------------------
    let cutoff = match Value::date_from_ymd(1995, 6, 17) {
        Value::Date(d) => d,
        _ => unreachable!(),
    };
    let mut orders = Vec::with_capacity(n_orders as usize);
    let mut lineitem = Vec::new();
    for ok in 1..=n_orders {
        // Spec-style sparse order keys (bits spread); plain keys keep
        // join behaviour identical and tests simpler.
        let custkey = rng.random_range(1..=n_customer);
        let orderdate = startdate() + rng.random_range(0..ORDER_SPAN_DAYS);
        let lines = rng.random_range(1..=7);
        let mut total = 0.0;
        let mut any_open = false;
        for ln in 1..=lines {
            let partkey = rng.random_range(1..=n_part);
            let i = rng.random_range(0..4i64);
            let suppkey = (partkey + i * (n_supplier / 4 + 1)) % n_supplier + 1;
            let quantity = rng.random_range(1..=50) as f64;
            let extended = quantity * money(&mut rng, 900.0, 2100.0);
            let discount = rng.random_range(0..=10) as f64 / 100.0;
            let tax = rng.random_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate + rng.random_range(1..=121);
            let commitdate = orderdate + rng.random_range(30..=90);
            let receiptdate = shipdate + rng.random_range(1..=30);
            let returnflag = if receiptdate <= cutoff {
                if rng.random_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };
            any_open |= linestatus == "O";
            total += extended * (1.0 + tax) * (1.0 - discount);
            lineitem.push(Row::from(vec![
                Value::Long(ok),
                Value::Long(partkey),
                Value::Long(suppkey),
                Value::Long(ln),
                Value::Double(quantity),
                Value::Double(extended),
                Value::Double(discount),
                Value::Double(tax),
                Value::Str(returnflag.to_string()),
                Value::Str(linestatus.to_string()),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::Str(INSTRUCTIONS[rng.random_range(0..INSTRUCTIONS.len())].to_string()),
                Value::Str(SHIP_MODES[rng.random_range(0..SHIP_MODES.len())].to_string()),
                Value::Str(comment(&mut rng, None)),
            ]));
        }
        let status = if !any_open {
            "F"
        } else if lines > 1 && rng.random_bool(0.3) {
            "P"
        } else {
            "O"
        };
        // ~1% of orders carry the Q13 probe phrase.
        let probe = if rng.random_range(0..100) == 0 {
            Some("special requests")
        } else {
            None
        };
        orders.push(Row::from(vec![
            Value::Long(ok),
            Value::Long(custkey),
            Value::Str(status.to_string()),
            Value::Double((total * 100.0).round() / 100.0),
            Value::Date(orderdate),
            Value::Str(PRIORITIES[rng.random_range(0..PRIORITIES.len())].to_string()),
            Value::Str(format!("Clerk#{:09}", rng.random_range(1..1000))),
            Value::Long(0),
            Value::Str(comment(&mut rng, probe)),
        ]));
    }
    out.insert("orders", orders);
    out.insert("lineitem", lineitem);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> HashMap<&'static str, Vec<Row>> {
        generate(0.001, 42)
    }

    #[test]
    fn deterministic() {
        let a = generate(0.001, 9);
        let b = generate(0.001, 9);
        for t in crate::tpch::TABLES {
            assert_eq!(a[t], b[t], "table {t} differs across runs");
        }
        let c = generate(0.001, 10);
        assert_ne!(a["lineitem"], c["lineitem"], "seed must matter");
    }

    #[test]
    fn row_counts_scale() {
        let d = small();
        assert_eq!(d["region"].len(), 5);
        assert_eq!(d["nation"].len(), 25);
        assert_eq!(d["supplier"].len(), 10);
        assert_eq!(d["customer"].len(), 150);
        assert_eq!(d["part"].len(), 200);
        assert_eq!(d["partsupp"].len(), 800);
        assert_eq!(d["orders"].len(), 1500);
        // 1..7 lines per order.
        let l = d["lineitem"].len();
        assert!((1500..=10_500).contains(&l), "lineitem = {l}");
    }

    #[test]
    fn referential_integrity() {
        let d = small();
        let custs: HashSet<i64> = d["customer"]
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        for o in &d["orders"] {
            assert!(custs.contains(&o.get(1).as_i64().unwrap()));
        }
        let orders: HashSet<i64> = d["orders"]
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        let parts: HashSet<i64> = d["part"]
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        let supps: HashSet<i64> = d["supplier"]
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        let ps: HashSet<(i64, i64)> = d["partsupp"]
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(1).as_i64().unwrap()))
            .collect();
        for l in &d["lineitem"] {
            assert!(orders.contains(&l.get(0).as_i64().unwrap()));
            let (p, s) = (l.get(1).as_i64().unwrap(), l.get(2).as_i64().unwrap());
            assert!(parts.contains(&p));
            assert!(supps.contains(&s));
            // Every lineitem (part, supplier) pair exists in partsupp —
            // Q9 depends on this.
            assert!(ps.contains(&(p, s)), "({p},{s}) missing from partsupp");
        }
    }

    #[test]
    fn date_relationships_hold() {
        let d = small();
        let odates: HashMap<i64, i64> = d["orders"]
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(4).as_i64().unwrap()))
            .collect();
        for l in &d["lineitem"] {
            let ok = l.get(0).as_i64().unwrap();
            let ship = l.get(10).as_i64().unwrap();
            let receipt = l.get(12).as_i64().unwrap();
            assert!(ship > odates[&ok], "shipdate after orderdate");
            assert!(receipt > ship, "receipt after ship");
        }
    }

    #[test]
    fn flags_follow_spec_rules() {
        let d = small();
        let cutoff = match Value::date_from_ymd(1995, 6, 17) {
            Value::Date(x) => x as i64,
            _ => unreachable!(),
        };
        for l in &d["lineitem"] {
            let receipt = l.get(12).as_i64().unwrap();
            let ship = l.get(10).as_i64().unwrap();
            let rf = l.get(8).as_str().unwrap();
            let ls = l.get(9).as_str().unwrap();
            if receipt <= cutoff {
                assert!(rf == "R" || rf == "A");
            } else {
                assert_eq!(rf, "N");
            }
            assert_eq!(ls, if ship > cutoff { "O" } else { "F" });
        }
    }

    #[test]
    fn probe_phrases_present() {
        let d = generate(0.01, 5);
        let has = |rows: &[Row], col: usize, probe: &str| {
            rows.iter()
                .any(|r| r.get(col).as_str().unwrap_or("").contains(probe))
        };
        assert!(
            has(&d["orders"], 8, "special requests"),
            "Q13 probe missing"
        );
        // Colors show up in part names for Q9/Q20.
        assert!(has(&d["part"], 1, "green"));
        assert!(has(&d["part"], 1, "forest"));
    }

    #[test]
    fn phone_country_code_matches_nation() {
        let d = small();
        for c in &d["customer"] {
            let nation = c.get(3).as_i64().unwrap();
            let phone = c.get(4).as_str().unwrap();
            assert!(
                phone.starts_with(&format!("{}-", nation + 10)),
                "{phone} vs {nation}"
            );
        }
    }
}
