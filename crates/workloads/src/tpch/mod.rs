//! TPC-H: schemas, generator, loader, and the 22-query suite.

pub mod dbgen;
pub mod queries;

use hdm_common::error::Result;
use hdm_common::value::DataType;
use hdm_core::Driver;
use hdm_storage::FormatKind;

/// The eight TPC-H tables in load order.
pub const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Column definitions of one table (TPC-H §1.4, decimals as DOUBLE).
pub fn schema_of(table: &str) -> Vec<(&'static str, DataType)> {
    use DataType::*;
    match table {
        "region" => vec![
            ("r_regionkey", Long),
            ("r_name", String),
            ("r_comment", String),
        ],
        "nation" => vec![
            ("n_nationkey", Long),
            ("n_name", String),
            ("n_regionkey", Long),
            ("n_comment", String),
        ],
        "supplier" => vec![
            ("s_suppkey", Long),
            ("s_name", String),
            ("s_address", String),
            ("s_nationkey", Long),
            ("s_phone", String),
            ("s_acctbal", Double),
            ("s_comment", String),
        ],
        "customer" => vec![
            ("c_custkey", Long),
            ("c_name", String),
            ("c_address", String),
            ("c_nationkey", Long),
            ("c_phone", String),
            ("c_acctbal", Double),
            ("c_mktsegment", String),
            ("c_comment", String),
        ],
        "part" => vec![
            ("p_partkey", Long),
            ("p_name", String),
            ("p_mfgr", String),
            ("p_brand", String),
            ("p_type", String),
            ("p_size", Long),
            ("p_container", String),
            ("p_retailprice", Double),
            ("p_comment", String),
        ],
        "partsupp" => vec![
            ("ps_partkey", Long),
            ("ps_suppkey", Long),
            ("ps_availqty", Long),
            ("ps_supplycost", Double),
            ("ps_comment", String),
        ],
        "orders" => vec![
            ("o_orderkey", Long),
            ("o_custkey", Long),
            ("o_orderstatus", String),
            ("o_totalprice", Double),
            ("o_orderdate", Date),
            ("o_orderpriority", String),
            ("o_clerk", String),
            ("o_shippriority", Long),
            ("o_comment", String),
        ],
        "lineitem" => vec![
            ("l_orderkey", Long),
            ("l_partkey", Long),
            ("l_suppkey", Long),
            ("l_linenumber", Long),
            ("l_quantity", Double),
            ("l_extendedprice", Double),
            ("l_discount", Double),
            ("l_tax", Double),
            ("l_returnflag", String),
            ("l_linestatus", String),
            ("l_shipdate", Date),
            ("l_commitdate", Date),
            ("l_receiptdate", Date),
            ("l_shipinstruct", String),
            ("l_shipmode", String),
            ("l_comment", String),
        ],
        other => panic!("unknown TPC-H table {other}"),
    }
}

/// What [`load`] measured while loading.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Bytes physically stored (format-dependent: ORC is smaller).
    pub stored_bytes: u64,
    /// Text-format-equivalent bytes of the same logical data — the
    /// *logical* dataset size. Nominal sizes like "the 40 GB data set"
    /// refer to this, so scaling a 40 GB experiment is format-neutral.
    pub text_bytes: u64,
}

/// Create all eight tables in `format` and load a generated dataset.
///
/// # Errors
/// Propagates DDL/load failures.
pub fn load_with_stats(
    driver: &mut Driver,
    scale: f64,
    seed: u64,
    format: FormatKind,
) -> Result<LoadStats> {
    let data = dbgen::generate(scale, seed);
    load_generated(driver, &data, format)
}

fn load_generated(
    driver: &mut Driver,
    data: &std::collections::HashMap<&'static str, Vec<hdm_common::row::Row>>,
    format: FormatKind,
) -> Result<LoadStats> {
    let mut text_bytes = 0u64;
    for table in TABLES {
        for row in &data[table] {
            text_bytes += hdm_storage::text::format_row(row, b'|').len() as u64 + 1;
        }
    }
    let mut total = 0;
    for table in TABLES {
        let columns: Vec<(String, DataType)> = schema_of(table)
            .into_iter()
            .map(|(n, t)| (n.to_string(), t))
            .collect();
        driver.execute(&format!(
            "CREATE TABLE {table} ({}) STORED AS {}",
            columns
                .iter()
                .map(|(n, t)| format!("{n} {t}"))
                .collect::<Vec<_>>()
                .join(", "),
            match format {
                FormatKind::Text => "TEXTFILE",
                FormatKind::Orc => "ORC",
            }
        ))?;
        total += driver.load_rows(table, &data[table])?;
    }
    Ok(LoadStats {
        stored_bytes: total,
        text_bytes,
    })
}

/// [`load_with_stats`] returning only the stored bytes.
///
/// # Errors
/// Propagates DDL/load failures.
pub fn load(driver: &mut Driver, scale: f64, seed: u64, format: FormatKind) -> Result<u64> {
    Ok(load_with_stats(driver, scale, seed, format)?.stored_bytes)
}

/// [`load`] with date-clustered fact tables: `lineitem` is sorted by
/// `l_shipdate` and `orders` by `o_orderdate` before loading.
///
/// Clustering narrows each ORC stripe's date min/max range so that
/// planner-side predicate pushdown can prune whole stripes on date
/// filters (e.g. Q6's one-year shipdate window). Query results are
/// unaffected — base-table row order is not part of any query contract.
///
/// # Errors
/// Propagates DDL/load failures.
pub fn load_clustered(
    driver: &mut Driver,
    scale: f64,
    seed: u64,
    format: FormatKind,
) -> Result<u64> {
    let mut data = dbgen::generate(scale, seed);
    for (table, col) in [("lineitem", 10usize), ("orders", 4usize)] {
        if let Some(rows) = data.get_mut(table) {
            rows.sort_by(|a, b| {
                let null = hdm_common::value::Value::Null;
                let l = a.values().get(col).unwrap_or(&null);
                let r = b.values().get(col).unwrap_or(&null);
                l.total_cmp(r)
            });
        }
    }
    Ok(load_generated(driver, &data, format)?.stored_bytes)
}

/// Drop all TPC-H tables (ignoring missing ones).
///
/// # Errors
/// Propagates metastore failures other than missing tables.
pub fn drop_all(driver: &mut Driver) -> Result<()> {
    for table in TABLES {
        driver.execute(&format!("DROP TABLE IF EXISTS {table}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_spec_arity() {
        assert_eq!(schema_of("lineitem").len(), 16);
        assert_eq!(schema_of("orders").len(), 9);
        assert_eq!(schema_of("part").len(), 9);
        assert_eq!(schema_of("customer").len(), 8);
        assert_eq!(schema_of("supplier").len(), 7);
        assert_eq!(schema_of("partsupp").len(), 5);
        assert_eq!(schema_of("nation").len(), 4);
        assert_eq!(schema_of("region").len(), 3);
    }

    #[test]
    fn load_creates_tables_with_rows() {
        let mut d = Driver::in_memory();
        let bytes = load(&mut d, 0.001, 7, FormatKind::Text).unwrap();
        assert!(bytes > 0);
        for t in TABLES {
            assert!(d.metastore().contains(t), "missing {t}");
        }
        let r = d.execute("SELECT COUNT(*) FROM lineitem").unwrap();
        let n = r.rows[0].get(0).as_i64().unwrap();
        assert!(n > 100, "lineitem too small: {n}");
    }
}
