//! The 22 TPC-H queries, rewritten for this HiveQL dialect exactly as
//! the paper rewrote them for Hive 0.13 ("the queries are modified to
//! adapt for the HiveQL", citing the hive-testbench rewrites):
//!
//! * correlated / scalar subqueries become temp-table scripts
//!   (`CREATE TABLE qN_x STORED AS ORC AS SELECT …`),
//! * `EXISTS` becomes `LEFT SEMI JOIN`, `NOT EXISTS` / `NOT IN` becomes
//!   `LEFT ANTI JOIN`,
//! * scalar comparisons against a single aggregated value join through a
//!   constant key column (`1 AS jk`),
//! * standard validation parameter values are substituted, with date
//!   arithmetic precomputed (`DATE '1998-09-02'` = Q1's `- 90 days`).
//!
//! Each script is re-runnable: it drops its temp tables first.

/// The query script for `n` in `1..=22`.
///
/// # Panics
/// Panics if `n` is out of range.
pub fn query(n: usize) -> &'static str {
    match n {
        1 => Q1,
        2 => Q2,
        3 => Q3,
        4 => Q4,
        5 => Q5,
        6 => Q6,
        7 => Q7,
        8 => Q8,
        9 => Q9,
        10 => Q10,
        11 => Q11,
        12 => Q12,
        13 => Q13,
        14 => Q14,
        15 => Q15,
        16 => Q16,
        17 => Q17,
        18 => Q18,
        19 => Q19,
        20 => Q20,
        21 => Q21,
        22 => Q22,
        other => panic!("TPC-H has queries 1..=22, not {other}"),
    }
}

/// All 22 query numbers.
pub fn all() -> impl Iterator<Item = usize> {
    1..=22
}

const Q1: &str = "\
SELECT l_returnflag, l_linestatus, \
  SUM(l_quantity) AS sum_qty, \
  SUM(l_extendedprice) AS sum_base_price, \
  SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
  SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
  AVG(l_quantity) AS avg_qty, \
  AVG(l_extendedprice) AS avg_price, \
  AVG(l_discount) AS avg_disc, \
  COUNT(*) AS count_order \
FROM lineitem \
WHERE l_shipdate <= DATE '1998-09-02' \
GROUP BY l_returnflag, l_linestatus \
ORDER BY l_returnflag, l_linestatus;";

const Q2: &str = "\
DROP TABLE IF EXISTS q2_min_cost; \
CREATE TABLE q2_min_cost STORED AS ORC AS \
SELECT ps_partkey AS mc_partkey, MIN(ps_supplycost) AS mc_min \
FROM partsupp ps \
JOIN supplier s ON ps.ps_suppkey = s.s_suppkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
JOIN region r ON n.n_regionkey = r.r_regionkey \
WHERE r_name = 'EUROPE' \
GROUP BY ps_partkey; \
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
FROM part p \
JOIN partsupp ps ON p.p_partkey = ps.ps_partkey \
JOIN supplier s ON s.s_suppkey = ps.ps_suppkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
JOIN region r ON n.n_regionkey = r.r_regionkey \
JOIN q2_min_cost m ON p.p_partkey = m.mc_partkey AND ps.ps_supplycost = m.mc_min \
WHERE r_name = 'EUROPE' AND p_size = 15 AND p_type LIKE '%BRASS' \
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100;";

const Q3: &str = "\
SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate, o_shippriority \
FROM customer c \
JOIN orders o ON c.c_custkey = o.o_custkey \
JOIN lineitem l ON l.l_orderkey = o.o_orderkey \
WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
GROUP BY l_orderkey, o_orderdate, o_shippriority \
ORDER BY revenue DESC, o_orderdate LIMIT 10;";

const Q4: &str = "\
SELECT o_orderpriority, COUNT(*) AS order_count \
FROM orders o \
LEFT SEMI JOIN lineitem l ON o.o_orderkey = l.l_orderkey AND l.l_commitdate < l.l_receiptdate \
WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01' \
GROUP BY o_orderpriority \
ORDER BY o_orderpriority;";

const Q5: &str = "\
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
FROM customer c \
JOIN orders o ON c.c_custkey = o.o_custkey \
JOIN lineitem l ON l.l_orderkey = o.o_orderkey \
JOIN supplier s ON l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
JOIN region r ON n.n_regionkey = r.r_regionkey \
WHERE r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
GROUP BY n_name \
ORDER BY revenue DESC;";

const Q6: &str = "\
SELECT SUM(l_extendedprice * l_discount) AS revenue \
FROM lineitem \
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24;";

const Q7: &str = "\
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, year(l_shipdate) AS l_year, \
  SUM(l_extendedprice * (1 - l_discount)) AS revenue \
FROM supplier s \
JOIN lineitem l ON s.s_suppkey = l.l_suppkey \
JOIN orders o ON o.o_orderkey = l.l_orderkey \
JOIN customer c ON c.c_custkey = o.o_custkey \
JOIN nation n1 ON s.s_nationkey = n1.n_nationkey \
JOIN nation n2 ON c.c_nationkey = n2.n_nationkey \
WHERE ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
    OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) \
  AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
GROUP BY n1.n_name, n2.n_name, year(l_shipdate) \
ORDER BY supp_nation, cust_nation, l_year;";

const Q8: &str = "\
DROP TABLE IF EXISTS q8_all_nations; \
CREATE TABLE q8_all_nations STORED AS ORC AS \
SELECT year(o_orderdate) AS o_year, l_extendedprice * (1 - l_discount) AS volume, n2.n_name AS nation \
FROM part p \
JOIN lineitem l ON p.p_partkey = l.l_partkey \
JOIN supplier s ON s.s_suppkey = l.l_suppkey \
JOIN orders o ON o.o_orderkey = l.l_orderkey \
JOIN customer c ON c.c_custkey = o.o_custkey \
JOIN nation n1 ON c.c_nationkey = n1.n_nationkey \
JOIN region r ON n1.n_regionkey = r.r_regionkey \
JOIN nation n2 ON s.s_nationkey = n2.n_nationkey \
WHERE r_name = 'AMERICA' AND p_type = 'ECONOMY ANODIZED STEEL' \
  AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'; \
SELECT o_year, \
  SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0.0 END) / SUM(volume) AS mkt_share \
FROM q8_all_nations \
GROUP BY o_year \
ORDER BY o_year;";

const Q9: &str = "\
SELECT n_name AS nation, year(o_orderdate) AS o_year, \
  SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit \
FROM part p \
JOIN lineitem l ON p.p_partkey = l.l_partkey \
JOIN supplier s ON s.s_suppkey = l.l_suppkey \
JOIN partsupp ps ON ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey \
JOIN orders o ON o.o_orderkey = l.l_orderkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
WHERE p_name LIKE '%green%' \
GROUP BY n_name, year(o_orderdate) \
ORDER BY nation, o_year DESC;";

const Q10: &str = "\
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
  c_acctbal, n_name, c_address, c_phone, c_comment \
FROM customer c \
JOIN orders o ON c.c_custkey = o.o_custkey \
JOIN lineitem l ON l.l_orderkey = o.o_orderkey \
JOIN nation n ON c.c_nationkey = n.n_nationkey \
WHERE o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' AND l_returnflag = 'R' \
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
ORDER BY revenue DESC LIMIT 20;";

const Q11: &str = "\
DROP TABLE IF EXISTS q11_part_value; \
DROP TABLE IF EXISTS q11_threshold; \
CREATE TABLE q11_part_value STORED AS ORC AS \
SELECT 1 AS jk, ps_partkey AS pv_partkey, SUM(ps_supplycost * ps_availqty) AS part_value \
FROM partsupp ps \
JOIN supplier s ON ps.ps_suppkey = s.s_suppkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
WHERE n_name = 'GERMANY' \
GROUP BY ps_partkey; \
CREATE TABLE q11_threshold STORED AS ORC AS \
SELECT 1 AS jk, SUM(part_value) * 0.0001 AS threshold FROM q11_part_value; \
SELECT pv_partkey, part_value \
FROM q11_part_value p \
JOIN q11_threshold t ON p.jk = t.jk \
WHERE part_value > threshold \
ORDER BY part_value DESC;";

const Q12: &str = "\
SELECT l_shipmode, \
  SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
  SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count \
FROM orders o \
JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
WHERE l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
  AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01' \
GROUP BY l_shipmode \
ORDER BY l_shipmode;";

const Q13: &str = "\
DROP TABLE IF EXISTS q13_c_orders; \
CREATE TABLE q13_c_orders STORED AS ORC AS \
SELECT c_custkey AS cc_custkey, COUNT(o_orderkey) AS c_count \
FROM customer c \
LEFT OUTER JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_comment NOT LIKE '%special%requests%' \
GROUP BY c_custkey; \
SELECT c_count, COUNT(*) AS custdist \
FROM q13_c_orders \
GROUP BY c_count \
ORDER BY custdist DESC, c_count DESC;";

const Q14: &str = "\
SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) \
  / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
FROM lineitem l \
JOIN part p ON l.l_partkey = p.p_partkey \
WHERE l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01';";

const Q15: &str = "\
DROP TABLE IF EXISTS q15_revenue; \
DROP TABLE IF EXISTS q15_max; \
CREATE TABLE q15_revenue STORED AS ORC AS \
SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
FROM lineitem \
WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
GROUP BY l_suppkey; \
CREATE TABLE q15_max STORED AS ORC AS \
SELECT 1 AS jk, MAX(total_revenue) AS max_rev FROM q15_revenue; \
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue \
FROM supplier s \
JOIN q15_revenue r ON s.s_suppkey = r.supplier_no \
JOIN q15_max m ON r.total_revenue = m.max_rev \
ORDER BY s_suppkey;";

const Q16: &str = "\
DROP TABLE IF EXISTS q16_complaints; \
CREATE TABLE q16_complaints STORED AS ORC AS \
SELECT s_suppkey AS cs_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%'; \
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
FROM partsupp ps \
JOIN part p ON p.p_partkey = ps.ps_partkey \
LEFT ANTI JOIN q16_complaints q ON ps.ps_suppkey = q.cs_suppkey \
WHERE p_brand <> 'Brand#45' AND p_type NOT LIKE 'MEDIUM POLISHED%' \
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
GROUP BY p_brand, p_type, p_size \
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size;";

const Q17: &str = "\
DROP TABLE IF EXISTS q17_avg_qty; \
CREATE TABLE q17_avg_qty STORED AS ORC AS \
SELECT l_partkey AS a_partkey, 0.2 * AVG(l_quantity) AS avg_qty \
FROM lineitem \
GROUP BY l_partkey; \
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly \
FROM lineitem l \
JOIN part p ON p.p_partkey = l.l_partkey \
JOIN q17_avg_qty a ON l.l_partkey = a.a_partkey \
WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX' AND l_quantity < avg_qty;";

const Q18: &str = "\
DROP TABLE IF EXISTS q18_big_orders; \
CREATE TABLE q18_big_orders STORED AS ORC AS \
SELECT l_orderkey AS big_orderkey, SUM(l_quantity) AS sum_qty \
FROM lineitem \
GROUP BY l_orderkey \
HAVING SUM(l_quantity) > 300; \
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty \
FROM customer c \
JOIN orders o ON c.c_custkey = o.o_custkey \
JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
JOIN q18_big_orders b ON o.o_orderkey = b.big_orderkey \
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
ORDER BY o_totalprice DESC, o_orderdate LIMIT 100;";

const Q19: &str = "\
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
FROM lineitem l \
JOIN part p ON p.p_partkey = l.l_partkey \
WHERE (p_brand = 'Brand#12' AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
    AND l_quantity >= 1 AND l_quantity <= 11 AND p_size BETWEEN 1 AND 5 \
    AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON') \
  OR (p_brand = 'Brand#23' AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
    AND l_quantity >= 10 AND l_quantity <= 20 AND p_size BETWEEN 1 AND 10 \
    AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON') \
  OR (p_brand = 'Brand#34' AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
    AND l_quantity >= 20 AND l_quantity <= 30 AND p_size BETWEEN 1 AND 15 \
    AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON');";

const Q20: &str = "\
DROP TABLE IF EXISTS q20_forest_parts; \
DROP TABLE IF EXISTS q20_qty; \
DROP TABLE IF EXISTS q20_avail_supp; \
CREATE TABLE q20_forest_parts STORED AS ORC AS \
SELECT p_partkey AS fp_partkey FROM part WHERE p_name LIKE 'forest%'; \
CREATE TABLE q20_qty STORED AS ORC AS \
SELECT l_partkey AS q_partkey, l_suppkey AS q_suppkey, 0.5 * SUM(l_quantity) AS half_qty \
FROM lineitem \
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
GROUP BY l_partkey, l_suppkey; \
CREATE TABLE q20_avail_supp STORED AS ORC AS \
SELECT ps_suppkey AS avail_suppkey \
FROM partsupp ps \
LEFT SEMI JOIN q20_forest_parts f ON ps.ps_partkey = f.fp_partkey \
JOIN q20_qty q ON ps.ps_partkey = q.q_partkey AND ps.ps_suppkey = q.q_suppkey \
WHERE ps_availqty > half_qty; \
SELECT s_name, s_address \
FROM supplier s \
LEFT SEMI JOIN q20_avail_supp a ON s.s_suppkey = a.avail_suppkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
WHERE n_name = 'CANADA' \
ORDER BY s_name;";

const Q21: &str = "\
DROP TABLE IF EXISTS q21_multi_supp; \
DROP TABLE IF EXISTS q21_late_supp; \
CREATE TABLE q21_multi_supp STORED AS ORC AS \
SELECT l_orderkey AS mo_orderkey, COUNT(DISTINCT l_suppkey) AS supp_cnt \
FROM lineitem \
GROUP BY l_orderkey \
HAVING COUNT(DISTINCT l_suppkey) > 1; \
CREATE TABLE q21_late_supp STORED AS ORC AS \
SELECT l_orderkey AS lo_orderkey, COUNT(DISTINCT l_suppkey) AS late_cnt \
FROM lineitem \
WHERE l_receiptdate > l_commitdate \
GROUP BY l_orderkey; \
SELECT s_name, COUNT(*) AS numwait \
FROM lineitem l \
JOIN orders o ON o.o_orderkey = l.l_orderkey \
JOIN supplier s ON s.s_suppkey = l.l_suppkey \
JOIN nation n ON s.s_nationkey = n.n_nationkey \
JOIN q21_multi_supp m ON l.l_orderkey = m.mo_orderkey \
JOIN q21_late_supp lt ON l.l_orderkey = lt.lo_orderkey \
WHERE o_orderstatus = 'F' AND l_receiptdate > l_commitdate \
  AND n_name = 'SAUDI ARABIA' AND lt.late_cnt = 1 \
GROUP BY s_name \
ORDER BY numwait DESC, s_name LIMIT 100;";

const Q22: &str = "\
DROP TABLE IF EXISTS q22_selected; \
DROP TABLE IF EXISTS q22_avg_bal; \
DROP TABLE IF EXISTS q22_with_orders; \
CREATE TABLE q22_selected STORED AS ORC AS \
SELECT 1 AS jk, c_custkey AS sel_custkey, c_acctbal AS sel_acctbal, substr(c_phone, 1, 2) AS cntrycode \
FROM customer \
WHERE substr(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17'); \
CREATE TABLE q22_avg_bal STORED AS ORC AS \
SELECT 1 AS jk, AVG(sel_acctbal) AS avg_bal FROM q22_selected WHERE sel_acctbal > 0.0; \
CREATE TABLE q22_with_orders STORED AS ORC AS \
SELECT o_custkey AS oc_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey; \
SELECT cntrycode, COUNT(*) AS numcust, SUM(sel_acctbal) AS totacctbal \
FROM q22_selected s \
LEFT ANTI JOIN q22_with_orders w ON s.sel_custkey = w.oc_custkey \
JOIN q22_avg_bal a ON s.jk = a.jk \
WHERE sel_acctbal > avg_bal \
GROUP BY cntrycode \
ORDER BY cntrycode;";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_parses() {
        for n in all() {
            let stmts = hdm_core::parser::parse_script(query(n))
                .unwrap_or_else(|e| panic!("Q{n} does not parse: {e}"));
            assert!(!stmts.is_empty(), "Q{n} empty");
        }
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn out_of_range_panics() {
        let _ = query(23);
    }

    #[test]
    fn multi_statement_scripts_are_rerunnable() {
        // Every CREATE TABLE has a preceding DROP IF EXISTS.
        for n in all() {
            let q = query(n);
            let creates = q.matches("CREATE TABLE").count();
            let drops = q.matches("DROP TABLE IF EXISTS").count();
            assert_eq!(creates, drops, "Q{n}: {creates} creates vs {drops} drops");
        }
    }
}
