//! A Zipf(θ) sampler over `1..=n` (the HiBench data skew).

use rand::Rng;

/// Precomputed-CDF Zipf sampler.
///
/// HiBench's Hive data ("the data set of HiBench conforms to the
/// Zipfian distribution") draws its source IPs and URL references from
/// this family; the skew it creates in group sizes is what the paper's
/// parallelism tuning (Section IV-D) fights.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `1..=n` with exponent `theta` (1.0 = classic).
    ///
    /// # Panics
    /// Panics if `n` is zero or `theta` is not finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a positive support");
        assert!(theta.is_finite(), "theta must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
            counts[k] += 1;
        }
        // Rank 1 should dominate rank 50 heavily.
        assert!(
            counts[1] > counts[50] * 5,
            "rank1={} rank50={}",
            counts[1],
            counts[50]
        );
        // Every decile sees some mass.
        assert!(counts[1] > 0 && counts[100] < counts[1]);
    }

    #[test]
    fn theta_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 11];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = counts[1..].iter().max().unwrap();
        let min = counts[1..].iter().min().unwrap();
        assert!(max < &(min * 2), "uniform-ish expected: {counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive support")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
