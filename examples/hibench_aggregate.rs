//! The HiBench AGGREGATE micro-benchmark, the paper's Section III
//! motivating workload: generate the Zipf-skewed web logs, run the
//! aggregation on both engines under both DataMPI shuffle styles, and
//! print the communication measurements the paper's Figures 2 and 6
//! are built from.
//!
//! ```text
//! cargo run --release -p hdm-apps --example hibench_aggregate
//! ```

use hdm_core::{Driver, EngineKind};
use hdm_workloads::hibench::{self, HiBenchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut driver = Driver::in_memory();
    let cfg = HiBenchConfig::default();
    let bytes = hibench::load(&mut driver, &cfg)?;
    println!(
        "loaded HiBench: {} uservisits / {} rankings rows, {bytes} bytes",
        cfg.uservisits, cfg.rankings
    );

    // Run on Hadoop and on DataMPI in both shuffle styles.
    let sql = hibench::aggregate_query();
    let hadoop = driver.execute_on(sql, EngineKind::Hadoop)?;
    let nonblocking = driver.execute_on(sql, EngineKind::DataMpi)?;
    driver
        .conf_mut()
        .set(hdm_common::conf::KEY_SHUFFLE_STYLE, "blocking");
    let blocking = driver.execute_on(sql, EngineKind::DataMpi)?;
    driver
        .conf_mut()
        .set(hdm_common::conf::KEY_SHUFFLE_STYLE, "nonblocking");

    assert_eq!(hadoop.rows.len(), nonblocking.rows.len());
    assert_eq!(hadoop.rows.len(), blocking.rows.len());
    println!(
        "{} distinct source IPs aggregated identically on every engine/style",
        hadoop.rows.len()
    );

    // The Figure 2(c) signal: KV wire sizes of the shuffled pairs.
    let hist = &nonblocking.stages[0].kv_sizes;
    println!(
        "shuffled {} pairs; wire sizes {}..{} B, top modes {:?} (paper: centralized around one size)",
        hist.count(),
        hist.min().unwrap_or(0),
        hist.max().unwrap_or(0),
        hist.top_modes(2)
    );

    // Data skew the parallelism knob fights (Section IV-D).
    let vols = &nonblocking.stages[0].volumes;
    let max = vols.reduces.iter().map(|r| r.records).max().unwrap_or(0);
    let min = vols.reduces.iter().map(|r| r.records).min().unwrap_or(0);
    println!(
        "A-task record skew: max {max} vs min {min} ({:.1}x) across {} A tasks",
        max as f64 / min.max(1) as f64,
        vols.reduces.len()
    );
    Ok(())
}
