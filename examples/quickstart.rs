//! Quickstart: spin up an in-memory warehouse, create a table, run the
//! same query on both execution engines, and replay it on the modelled
//! 8-node cluster.
//!
//! ```text
//! cargo run --release -p hdm-apps --example quickstart
//! ```

use hdm_cluster::{ClusterSpec, DataMpiSimOptions};
use hdm_core::driver::simulate_query;
use hdm_core::{Driver, EngineKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Driver is a Hive session: metastore + DFS + configuration.
    let driver = Driver::in_memory();

    driver.execute("CREATE TABLE sales (region STRING, item STRING, amount DOUBLE, day DATE)")?;
    driver.execute(
        "INSERT INTO sales VALUES \
           ('EMEA', 'widget',  120.0, '1995-01-03'), \
           ('EMEA', 'gadget',   80.5, '1995-01-04'), \
           ('APAC', 'widget',  210.0, '1995-01-04'), \
           ('APAC', 'widget',   55.0, '1995-02-01'), \
           ('AMER', 'gadget',  300.0, '1995-02-11'), \
           ('AMER', 'widget',   42.0, '1995-03-06')",
    )?;

    let sql = "SELECT region, COUNT(*) AS n, SUM(amount) AS total \
               FROM sales WHERE day >= DATE '1995-01-04' \
               GROUP BY region ORDER BY total DESC";

    // The engine is a plug-in: the same compiled plan runs on either.
    for engine in [EngineKind::Hadoop, EngineKind::DataMpi] {
        let result = driver.execute_on(sql, engine)?;
        println!("--- {} ---", engine.name());
        println!("{}", result.columns.join("\t"));
        for line in result.to_lines() {
            println!("{line}");
        }
    }

    // Replay the measured volumes on the paper's modelled testbed at a
    // nominal 20 GB, as the benchmark harness does.
    let result = driver.execute_on(sql, EngineKind::DataMpi)?;
    let timelines = simulate_query(
        &result.stages,
        EngineKind::DataMpi,
        &ClusterSpec::default(),
        DataMpiSimOptions::default(),
        1000.0, // pretend the table were 1000x bigger
    );
    for tl in &timelines {
        println!(
            "simulated stage {}: {:.1}s (startup {:.1}s, map-shuffle {:.1}s, others {:.1}s)",
            tl.name,
            tl.total(),
            tl.breakdown.startup,
            tl.breakdown.map_shuffle,
            tl.breakdown.others
        );
    }
    Ok(())
}
