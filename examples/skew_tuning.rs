//! Section IV-D in action: data skew on TPC-H Q9 and the
//! `hive.datampi.parallelism` knob. The paper observes that with
//! Hive's default 16 A tasks, the most loaded task processes 13x the
//! records of the least loaded; raising the parallelism to the slot
//! count cuts the stage time to ~27%.
//!
//! ```text
//! cargo run --release -p hdm-apps --example skew_tuning
//! ```

use hdm_cluster::{ClusterSpec, DataMpiSimOptions};
use hdm_core::driver::simulate_query;
use hdm_core::{Driver, EngineKind};
use hdm_storage::FormatKind;
use hdm_workloads::tpch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut driver = Driver::in_memory();
    let stats = tpch::load_with_stats(&mut driver, 0.002, 7, FormatKind::Orc)?;
    let scale = 40.0e9 / stats.text_bytes as f64;
    let sql = tpch::queries::query(9);

    for mode in ["default", "enhanced"] {
        driver
            .conf_mut()
            .set(hdm_common::conf::KEY_PARALLELISM, mode);
        let result = driver.execute_on(sql, EngineKind::DataMpi)?;
        // Find the most skewed stage of the query.
        let (_worst_stage, skew, a_tasks) = result
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let max = s
                    .volumes
                    .reduces
                    .iter()
                    .map(|r| r.records)
                    .max()
                    .unwrap_or(0);
                let min = s
                    .volumes
                    .reduces
                    .iter()
                    .map(|r| r.records)
                    .min()
                    .unwrap_or(0);
                (i, max as f64 / min.max(1) as f64, s.reduce_tasks)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("stages");
        let timelines = simulate_query(
            &result.stages,
            EngineKind::DataMpi,
            &ClusterSpec::default(),
            DataMpiSimOptions::default(),
            scale,
        );
        let total: f64 = timelines.iter().map(|t| t.total()).sum();
        println!(
            "parallelism={mode:<8}  worst-stage skew {skew:>5.1}x over {a_tasks:>2} A tasks  \
             simulated Q9 @40GB: {total:.1}s"
        );
    }
    println!(
        "(paper: 13x skew at 16 tasks; enhanced parallelism cuts the stage to ~27% of its time)"
    );
    Ok(())
}
