//! TPC-H Q3 (shipping priority) end to end: generate the dataset, run
//! the three-stage query on both engines, compare results and measured
//! data volumes, then project both onto the modelled cluster at 40 GB.
//!
//! ```text
//! cargo run --release -p hdm-apps --example tpch_q3
//! ```

use hdm_cluster::{ClusterSpec, DataMpiSimOptions};
use hdm_core::driver::simulate_query;
use hdm_core::{Driver, EngineKind};
use hdm_storage::FormatKind;
use hdm_workloads::tpch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut driver = Driver::in_memory();
    let stats = tpch::load_with_stats(&mut driver, 0.002, 42, FormatKind::Orc)?;
    println!(
        "loaded TPC-H @ SF 0.002 as ORC: {} stored bytes ({} text-equivalent)",
        stats.stored_bytes, stats.text_bytes
    );

    let sql = tpch::queries::query(3);
    let hadoop = driver.execute_on(sql, EngineKind::Hadoop)?;
    let datampi = driver.execute_on(sql, EngineKind::DataMpi)?;

    println!("\nQ3 top rows ({}):", datampi.columns.join(", "));
    for line in datampi.to_lines().iter().take(5) {
        println!("  {line}");
    }
    assert_eq!(hadoop.rows.len(), datampi.rows.len(), "engines disagree!");

    println!("\nper-stage measured volumes (DataMPI run):");
    for (i, stage) in datampi.stages.iter().enumerate() {
        println!(
            "  stage {i}: {} maps, {} reduces, input {} B, shuffle {} B",
            stage.map_tasks,
            stage.reduce_tasks,
            stage.volumes.total_input_bytes(),
            stage.volumes.total_shuffle_bytes()
        );
    }

    // Project to the paper's 40 GB testbed.
    let scale = 40.0e9 / stats.text_bytes as f64;
    let spec = ClusterSpec::default();
    let h = simulate_query(
        &hadoop.stages,
        EngineKind::Hadoop,
        &spec,
        DataMpiSimOptions::default(),
        scale,
    );
    let d = simulate_query(
        &datampi.stages,
        EngineKind::DataMpi,
        &spec,
        DataMpiSimOptions::default(),
        scale,
    );
    let ht: f64 = h.iter().map(|t| t.total()).sum();
    let dt: f64 = d.iter().map(|t| t.total()).sum();
    println!(
        "\nsimulated at 40 GB: Hadoop {ht:.1}s vs DataMPI {dt:.1}s ({:.1}% faster)",
        100.0 * (1.0 - dt / ht)
    );
    Ok(())
}
