//! Property: for any query shape and dataset, the Hadoop and DataMPI
//! engines produce identical result sets — the foundation of the
//! paper's "fully and transparently support" claim.

use hdm_common::row::Row;
use hdm_common::value::Value;
use hdm_core::{Driver, EngineKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn driver_with_random_tables(seed: u64, rows_a: usize, rows_b: usize) -> Driver {
    let d = Driver::in_memory();
    d.execute("CREATE TABLE ta (k BIGINT, grp STRING, x DOUBLE)")
        .expect("ddl a");
    d.execute("CREATE TABLE tb (k BIGINT, label STRING)")
        .expect("ddl b");
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<Row> = (0..rows_a)
        .map(|_| {
            Row::from(vec![
                Value::Long(rng.random_range(0..40)),
                Value::Str(format!("g{}", rng.random_range(0..6))),
                Value::Double((rng.random_range(-100.0f64..100.0) * 10.0).round() / 10.0),
            ])
        })
        .collect();
    let b: Vec<Row> = (0..rows_b)
        .map(|_| {
            Row::from(vec![
                Value::Long(rng.random_range(0..40)),
                Value::Str(format!("l{}", rng.random_range(0..10))),
            ])
        })
        .collect();
    d.load_rows("ta", &a).expect("load a");
    d.load_rows("tb", &b).expect("load b");
    d
}

fn both_engines_agree(d: &mut Driver, sql: &str) {
    let mut hadoop = d
        .execute_on(sql, EngineKind::Hadoop)
        .unwrap_or_else(|e| panic!("hadoop failed for {sql}: {e}"))
        .to_lines();
    let mut datampi = d
        .execute_on(sql, EngineKind::DataMpi)
        .unwrap_or_else(|e| panic!("datampi failed for {sql}: {e}"))
        .to_lines();
    hadoop.sort();
    datampi.sort();
    assert_eq!(hadoop, datampi, "engines disagree on: {sql}");
}

const QUERY_SHAPES: &[&str] = &[
    "SELECT k, grp FROM ta WHERE x > 0",
    "SELECT grp, COUNT(*) AS n, SUM(x) AS s, MIN(x) AS mn, MAX(x) AS mx FROM ta GROUP BY grp",
    "SELECT COUNT(*) AS n, AVG(x) AS a FROM ta",
    "SELECT grp, COUNT(DISTINCT k) AS dk FROM ta GROUP BY grp",
    "SELECT label, SUM(x) AS s FROM ta JOIN tb ON ta.k = tb.k GROUP BY label",
    "SELECT ta.k, x, label FROM ta LEFT OUTER JOIN tb ON ta.k = tb.k",
    "SELECT ta.k FROM ta LEFT SEMI JOIN tb ON ta.k = tb.k",
    "SELECT ta.k FROM ta LEFT ANTI JOIN tb ON ta.k = tb.k",
    "SELECT grp, x FROM ta ORDER BY x DESC, grp LIMIT 7",
    "SELECT grp, CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END AS sign, COUNT(*) AS n \
     FROM ta GROUP BY grp, CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END",
    "SELECT grp, COUNT(*) AS n FROM ta GROUP BY grp HAVING COUNT(*) > 2 ORDER BY n DESC",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn engines_agree_on_random_data(seed in any::<u64>(), rows_a in 1usize..120, rows_b in 0usize..60) {
        let mut d = driver_with_random_tables(seed, rows_a, rows_b.max(1));
        for sql in QUERY_SHAPES {
            both_engines_agree(&mut d, sql);
        }
    }
}

#[test]
fn engines_agree_on_edge_datasets() {
    // Single row everywhere.
    let mut d = driver_with_random_tables(1, 1, 1);
    for sql in QUERY_SHAPES {
        both_engines_agree(&mut d, sql);
    }
    // All keys identical (maximum skew: one reducer gets everything).
    let mut d = Driver::in_memory();
    d.execute("CREATE TABLE ta (k BIGINT, grp STRING, x DOUBLE)")
        .unwrap();
    d.execute("CREATE TABLE tb (k BIGINT, label STRING)")
        .unwrap();
    let rows: Vec<Row> = (0..200)
        .map(|i| {
            Row::from(vec![
                Value::Long(7),
                Value::Str("g".into()),
                Value::Double(i as f64),
            ])
        })
        .collect();
    d.load_rows("ta", &rows).unwrap();
    d.load_rows(
        "tb",
        &[Row::from(vec![Value::Long(7), Value::Str("hit".into())])],
    )
    .unwrap();
    for sql in QUERY_SHAPES {
        both_engines_agree(&mut d, sql);
    }
}

#[test]
fn engines_agree_with_nulls_in_data() {
    let mut d = Driver::in_memory();
    d.execute("CREATE TABLE ta (k BIGINT, grp STRING, x DOUBLE)")
        .unwrap();
    d.execute("CREATE TABLE tb (k BIGINT, label STRING)")
        .unwrap();
    let rows = vec![
        Row::from(vec![Value::Long(1), Value::Null, Value::Double(1.0)]),
        Row::from(vec![Value::Null, Value::Str("g1".into()), Value::Null]),
        Row::from(vec![
            Value::Long(2),
            Value::Str("g1".into()),
            Value::Double(-1.0),
        ]),
        Row::from(vec![Value::Long(1), Value::Str("g2".into()), Value::Null]),
    ];
    d.load_rows("ta", &rows).unwrap();
    d.load_rows(
        "tb",
        &[Row::from(vec![Value::Long(1), Value::Str("one".into())])],
    )
    .unwrap();
    for sql in QUERY_SHAPES {
        both_engines_agree(&mut d, sql);
    }
}

#[test]
fn normalized_keys_agree_with_row_codec_keys() {
    // `hive.shuffle.normalized.keys` changes the wire encoding of every
    // ReduceSink key (memcmp-comparable sortkey bytes vs the plain row
    // codec) — results must be bit-identical either way, on both engines.
    let with_norm = driver_with_random_tables(7, 110, 50);
    let mut without = driver_with_random_tables(7, 110, 50);
    without
        .conf_mut()
        .set(hdm_common::conf::KEY_NORMALIZED_KEYS, "false");
    for sql in QUERY_SHAPES {
        for engine in [EngineKind::Hadoop, EngineKind::DataMpi] {
            let mut a = with_norm
                .execute_on(sql, engine)
                .unwrap_or_else(|e| panic!("normalized failed for {sql}: {e}"))
                .to_lines();
            let mut b = without
                .execute_on(sql, engine)
                .unwrap_or_else(|e| panic!("row-codec failed for {sql}: {e}"))
                .to_lines();
            a.sort();
            b.sort();
            assert_eq!(a, b, "normalized keys changed results for: {sql}");
        }
        // Order-sensitive check: ORDER BY output must match line-for-line
        // (DESC directions are baked into the normalized bytes).
        if sql.contains("ORDER BY") {
            let a = with_norm
                .execute_on(sql, EngineKind::DataMpi)
                .unwrap()
                .to_lines();
            let b = without
                .execute_on(sql, EngineKind::DataMpi)
                .unwrap()
                .to_lines();
            assert_eq!(a, b, "normalized keys changed sort order for: {sql}");
        }
    }
}

#[test]
fn shuffle_styles_agree() {
    let mut d = driver_with_random_tables(99, 100, 40);
    let sql = "SELECT grp, COUNT(*) AS n, SUM(x) AS s FROM ta GROUP BY grp ORDER BY grp";
    let nonblocking = d.execute_on(sql, EngineKind::DataMpi).unwrap().to_lines();
    d.conf_mut()
        .set(hdm_common::conf::KEY_SHUFFLE_STYLE, "blocking");
    let blocking = d.execute_on(sql, EngineKind::DataMpi).unwrap().to_lines();
    assert_eq!(nonblocking, blocking, "shuffle style changed results");
}
