//! Chaos-mode integration: seeded fault injection over TPC-H.
//!
//! The recovery contract (`hive.ft.*`): a fault-tolerant run — however
//! many task attempts were crashed, stalled, dropped or failed over to
//! the fallback engine — must return exactly the result set of the
//! fault-free run. Fault injection is seed-deterministic, so every
//! failure here is replayable by its printed seed.

use hdm_core::{Driver, EngineKind};
use hdm_storage::FormatKind;
use hdm_workloads::tpch;
use proptest::prelude::*;

fn fresh_driver() -> Driver {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, FormatKind::Text).expect("load tpch");
    d
}

/// Arm fault tolerance with chaos-test pacing (short backoff/timeout).
fn set_ft(d: &mut Driver, seed: u64) {
    let c = d.conf_mut();
    c.set(hdm_common::conf::KEY_OBS_ENABLED, true);
    c.set(hdm_common::conf::KEY_FT_ENABLED, true);
    c.set(hdm_common::conf::KEY_FT_SEED, seed);
    c.set(hdm_common::conf::KEY_FT_BACKOFF_BASE_MS, 1);
    c.set(hdm_common::conf::KEY_FT_RECV_TIMEOUT_MS, 400);
}

fn clear_ft(d: &mut Driver) {
    d.conf_mut().set(hdm_common::conf::KEY_FT_ENABLED, false);
}

/// Sum of one `ft.*` counter across labels in the last query's snapshot.
fn counter_total(d: &Driver, name: &str) -> u64 {
    d.last_obs_snapshot().map_or(0, |s| {
        s.counters
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, v)| *v)
            .sum()
    })
}

fn run_query(d: &mut Driver, n: usize, engine: EngineKind) -> Vec<String> {
    let result = d
        .execute_on(tpch::queries::query(n), engine)
        .unwrap_or_else(|e| panic!("Q{n} failed on {engine:?}: {e}"));
    result.to_lines()
}

/// Sorted-line comparison with float canonicalization (identical to the
/// fault-free end-to-end suite): engines and retried attempts sum
/// partitions in different orders, so float cells can differ in last
/// ulps; row order within equal keys is unspecified even fault-free.
fn normalize(mut lines: Vec<String>) -> Vec<String> {
    for line in &mut lines {
        let fields: Vec<String> = line
            .split('\t')
            .map(|f| {
                if f.contains('.') {
                    match f.parse::<f64>() {
                        Ok(x) => format!("{x:.5e}"),
                        Err(_) => f.to_string(),
                    }
                } else {
                    f.to_string()
                }
            })
            .collect();
        *line = fields.join("\t");
    }
    lines.sort();
    lines
}

/// A mix of stage shapes: scan+aggregate (Q1, Q6), join-heavy (Q3), and
/// a two-sided join with grouping (Q12).
const FT_QUERIES: [usize; 4] = [1, 3, 6, 12];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any fault seed: the chaos run must complete (recovering through
    /// retries and, when task recovery is exhausted, the engine
    /// fallback) and match the fault-free result set. Seeds whose runs
    /// recover (retries > 0) are the interesting cases; seeds that
    /// happen to inject nothing degenerate into a plain equality check.
    #[test]
    fn chaos_run_matches_fault_free(seed in 0u64..1_000_000, qi in 0usize..FT_QUERIES.len()) {
        let n = FT_QUERIES[qi];
        let mut d = fresh_driver();
        let clean = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        set_ft(&mut d, seed);
        let chaotic = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        prop_assert_eq!(clean, chaotic, "Q{} diverged under fault seed {}", n, seed);
    }

    /// Replaying the same seed in a fresh session (so query ids, and
    /// with them the temp paths that storage faults key on, line up)
    /// reproduces the identical result set — what makes chaos failures
    /// debuggable. Injection *counts* are not asserted: a recv timeout
    /// can fire spuriously under full-machine test load and legitimately
    /// reroute one replay through the fallback engine.
    #[test]
    fn same_seed_replays_identically(seed in 0u64..1_000_000) {
        let run = |seed: u64| {
            let mut d = fresh_driver();
            set_ft(&mut d, seed);
            normalize(run_query(&mut d, 3, EngineKind::DataMpi))
        };
        let first = run(seed);
        let second = run(seed);
        prop_assert_eq!(first, second, "seed {} did not replay", seed);
    }
}

/// The acceptance sweep: with fault tolerance armed on a crash-inducing
/// seed, all 22 TPC-H queries still produce correct results, and the
/// recovery machinery demonstrably engaged (≥1 detected fault, ≥1 task
/// retry across the sweep).
#[test]
fn all_22_queries_survive_chaos_with_correct_results() {
    let mut d = fresh_driver();
    let mut detected = 0u64;
    let mut retries = 0u64;
    let mut fallbacks = 0u64;
    for n in tpch::queries::all() {
        clear_ft(&mut d);
        let clean = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        set_ft(&mut d, 0xC0FFEE ^ n as u64);
        let chaotic = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        assert_eq!(clean, chaotic, "Q{n}: chaos run diverged");
        detected += counter_total(&d, "ft.detected");
        retries += counter_total(&d, "ft.retries");
        fallbacks += counter_total(&d, "ft.fallbacks");
    }
    assert!(
        detected >= 1,
        "no fault was ever detected across 22 queries"
    );
    assert!(retries >= 1, "no task retry ever ran across 22 queries");
    // Fallbacks are legitimate (drop faults are not task-recoverable);
    // the sweep only requires that they never corrupt a result.
    let _ = fallbacks;
}
