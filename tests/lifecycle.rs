//! End-to-end query lifecycle control (`hdm-server` + the cancellation
//! spine).
//!
//! The lifecycle contract: a query moves Queued → Admitted → Running →
//! {Finished, Cancelled, Shed}. Cancellation — from a caller's token, a
//! per-query deadline, or server shutdown — is cooperative and
//! surfaces as the typed `cancelled` error, never as a retry, a
//! fallback, a poisoned sibling, or partial warehouse output. A clean
//! rerun after any cancelled run is byte-identical to a solo run.

use hdm_common::conf as keys;
use hdm_common::CancelToken;
use hdm_core::{Driver, EngineKind};
use hdm_server::HdmServer;
use hdm_storage::FormatKind;
use hdm_workloads::tpch;
use std::time::Duration;

fn fresh_tpch_driver(format: FormatKind) -> Driver {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, format).expect("load tpch");
    d
}

fn counter(server: &HdmServer, name: &str) -> u64 {
    server
        .obs_snapshot()
        .counters
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| *v)
        .sum()
}

/// A pre-fired token short-circuits before admission; firing mid-run
/// interrupts cooperatively; and the rerun after either is
/// byte-identical to the solo baseline (no cache poisoning, no partial
/// state).
#[test]
fn cancelled_query_leaves_no_trace_and_rerun_is_byte_identical() {
    let solo = fresh_tpch_driver(FormatKind::Text);
    let expect = solo
        .execute(tpch::queries::query(1))
        .expect("solo Q1")
        .to_lines();

    let server = HdmServer::over(fresh_tpch_driver(FormatKind::Text)).expect("server");
    let session = server.session("t");

    // Arm 1: already-fired token → typed Cancelled, nothing executed.
    let fired = CancelToken::new();
    fired.cancel("caller abandoned before submit");
    let err = session
        .execute_cancellable(tpch::queries::query(1), &fired)
        .unwrap_err();
    assert!(err.is_cancelled(), "{err}");

    // Arm 2: fire mid-run from another thread. The race is inherent —
    // the query may finish first — but the outcome must be exactly
    // Ok(baseline) or Cancelled, never anything else.
    let token = CancelToken::new();
    let killer = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel("mid-run abandon");
        })
    };
    match session.execute_cancellable(tpch::queries::query(1), &token) {
        Ok(r) => assert_eq!(r.to_lines(), expect, "completed-before-cancel run diverged"),
        Err(e) => assert!(
            e.is_cancelled(),
            "only the typed cancel error may surface: {e}"
        ),
    }
    killer.join().unwrap();

    // The rerun (fresh token) must be byte-identical to solo: a
    // cancelled attempt publishes no result-cache entry and leaves no
    // partial warehouse output behind.
    let rerun = session
        .execute(tpch::queries::query(1))
        .expect("clean rerun after cancel")
        .to_lines();
    assert_eq!(rerun, expect, "post-cancel rerun diverged from solo");
    assert!(counter(&server, "cancel.acknowledged") >= 1);
}

/// `hive.query.timeout.ms` cancels a query stuck in the admission queue:
/// queue wait draws down the same deadline budget as execution.
#[test]
fn deadline_cancels_queued_query_with_typed_error_and_metrics() {
    let mut driver = fresh_tpch_driver(FormatKind::Text);
    driver.conf_mut().set(keys::KEY_SERVER_POOL_SIZE, 1);
    let server = HdmServer::over(driver).expect("server");

    // Saturate the pool through the raw gate so the session's query can
    // never be admitted.
    let hog = server.admission().admit("hog").expect("hog permit");
    let mut session = server.session("t");
    session.conf_mut().set(keys::KEY_QUERY_TIMEOUT_MS, 40);
    let err = session.execute(tpch::queries::query(6)).unwrap_err();
    assert!(err.is_cancelled(), "{err}");
    assert!(
        err.message().contains("deadline"),
        "reason must name the deadline: {err}"
    );
    drop(hog);

    assert_eq!(server.stats().cancelled, 1);
    assert!(counter(&server, "cancel.requested") >= 1);
    assert!(counter(&server, "cancel.acknowledged") >= 1);

    // Timeout 0 disables the deadline entirely: the same query admits
    // and completes once the pool is free.
    session.conf_mut().set(keys::KEY_QUERY_TIMEOUT_MS, 0);
    session
        .execute(tpch::queries::query(6))
        .expect("no deadline");
}

/// Overload shedding: with the pool saturated and a backlog queued, a
/// new arrival whose projected wait exceeds the ceiling is rejected
/// with the typed overload error — before taking a permit or a ticket.
#[test]
fn overload_shed_rejects_projected_long_wait_with_typed_error() {
    let mut driver = fresh_tpch_driver(FormatKind::Text);
    driver.conf_mut().set(keys::KEY_SERVER_POOL_SIZE, 1);
    driver.conf_mut().set(keys::KEY_SERVER_SHED_WAIT_MS, 1);
    // The shed probe must see execution, not cache hits.
    driver.conf_mut().set(keys::KEY_SERVER_RESULT_CACHE, false);
    let server = HdmServer::over(driver).expect("server");

    let hog = server.admission().admit("hog").expect("hog permit");
    // Park two waiters behind the hog: projected wait for a third
    // arrival is (2 + 1) * >=1ms / pool=1 >= 3ms > 1ms ceiling.
    let waiters: Vec<_> = (0..2)
        .map(|_| {
            let gate = server.admission().clone();
            std::thread::spawn(move || gate.admit("w").map(drop))
        })
        .collect();
    while server.admission().queue_depth() < 2 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let session = server.session("t");
    let err = session.execute(tpch::queries::query(6)).unwrap_err();
    assert_eq!(err.subsystem(), "overloaded", "{err}");
    assert!(err.message().contains("projected queue wait"), "{err}");
    let s = server.stats();
    assert_eq!(s.shed, 1, "{s:?}");
    assert!(counter(&server, "server.shed") >= 1);

    drop(hog);
    for w in waiters {
        w.join().unwrap().unwrap();
    }
    // With the backlog gone the same query is admitted and runs.
    session
        .execute(tpch::queries::query(6))
        .expect("uncongested run");
}

/// The per-engine circuit breaker: consecutive non-cancelled failures
/// at the threshold flip subsequent queries to the fallback engine;
/// cancellations never charge the breaker.
#[test]
fn breaker_flips_sick_engine_to_fallback_and_cancel_does_not_charge() {
    let mut driver = fresh_tpch_driver(FormatKind::Text);
    driver.conf_mut().set(keys::KEY_SERVER_BREAKER_FAILURES, 2);
    let server = HdmServer::over(driver).expect("server");
    let session = server.session("t");

    // A cancelled query must not count toward the failure streak.
    let fired = CancelToken::new();
    fired.cancel("not a failure");
    let _ = session
        .execute_on_cancellable("SELECT k FROM missing_table", EngineKind::Hadoop, &fired)
        .unwrap_err();

    // Two real failures on Hadoop trip its breaker.
    for _ in 0..2 {
        let err = session
            .execute_on("SELECT k FROM missing_table", EngineKind::Hadoop)
            .unwrap_err();
        assert!(!err.is_cancelled(), "{err}");
    }
    assert_eq!(counter(&server, "server.breaker.open"), 1);

    // The next Hadoop query silently degrades to DataMpi and succeeds.
    let r = session
        .execute_on(tpch::queries::query(6), EngineKind::Hadoop)
        .expect("breaker must flip a sick engine to the fallback");
    assert!(!r.rows.is_empty());
    assert!(counter(&server, "server.breaker.flip") >= 1);

    // DataMpi's own breaker is untouched: direct use still works.
    session
        .execute_on(tpch::queries::query(1), EngineKind::DataMpi)
        .expect("healthy engine unaffected");
}

/// Graceful shutdown, happy path: with nothing in flight the gate
/// drains inside the window, and new queries are rejected at the door
/// with the typed cancel error.
#[test]
fn shutdown_drains_idle_server_and_rejects_new_queries() {
    let server = HdmServer::over(fresh_tpch_driver(FormatKind::Text)).expect("server");
    let session = server.session("t");
    session.execute(tpch::queries::query(6)).expect("warmup");

    assert!(
        server.shutdown(Duration::from_secs(2)),
        "idle server must drain"
    );
    assert!(server.is_shutting_down());
    let err = session.execute(tpch::queries::query(6)).unwrap_err();
    assert!(err.is_cancelled(), "{err}");
    assert!(err.message().contains("shutting down"), "{err}");
    assert_eq!(counter(&server, "server.drained"), 1);
}

/// Graceful shutdown, straggler path: a query parked in the queue past
/// the drain window is expelled with the typed cancel error, and the
/// gate still reaches idle once the blocking permit is released.
#[test]
fn shutdown_cancels_stragglers_past_drain_window() {
    let mut driver = fresh_tpch_driver(FormatKind::Text);
    driver.conf_mut().set(keys::KEY_SERVER_POOL_SIZE, 1);
    driver.conf_mut().set(keys::KEY_SERVER_RESULT_CACHE, false);
    let server = HdmServer::over(driver).expect("server");

    let hog = server.admission().admit("hog").expect("hog permit");
    let parked = {
        let session = server.session("t");
        std::thread::spawn(move || session.execute(tpch::queries::query(6)).map(drop))
    };
    while server.admission().queue_depth() < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Free the hog shortly after the drain window expires so the gate
    // can reach idle once the straggler is expelled.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(hog);
    });
    let drained = server.shutdown(Duration::from_millis(100));
    assert!(!drained, "a held permit must defeat the drain window");
    release.join().unwrap();

    let err = parked.join().unwrap().unwrap_err();
    assert!(
        err.is_cancelled(),
        "straggler must surface cancelled: {err}"
    );
    assert_eq!(server.admission().running(), 0);
    assert_eq!(server.admission().queue_depth(), 0);
    assert!(server.stats().cancelled >= 1);
}

/// Deadline-cancel several queued queries under a saturated pool and
/// report the request→acknowledge latency distribution; the p99 bounds
/// how long a fired token goes unobserved.
#[test]
fn cancel_latency_p99_under_load_is_reported() {
    let mut driver = fresh_tpch_driver(FormatKind::Text);
    driver.conf_mut().set(keys::KEY_SERVER_POOL_SIZE, 1);
    let server = HdmServer::over(driver).expect("server");
    let hog = server.admission().admit("hog").expect("hog permit");

    let mut handles = Vec::new();
    for i in 0..6 {
        let mut session = server.session(&format!("t{i}"));
        session.conf_mut().set(keys::KEY_QUERY_TIMEOUT_MS, 20);
        handles.push(std::thread::spawn(move || {
            session.execute(tpch::queries::query(6)).unwrap_err()
        }));
    }
    for h in handles {
        assert!(h.join().unwrap().is_cancelled());
    }
    drop(hog);

    let snapshot = server.obs_snapshot();
    let (_, _, hist) = snapshot
        .timers
        .iter()
        .find(|(n, _, _)| n == "cancel.latency.ms")
        .expect("cancel.latency.ms must be recorded");
    assert_eq!(hist.count(), 6);
    // p99 from the fixed-width buckets: smallest bucket upper bound
    // covering >= 99% of observations.
    let total = hist.count();
    let mut seen = 0;
    let mut p99 = 0;
    for (start, count) in hist.buckets() {
        seen += count;
        p99 = start + hist.bucket_width();
        if seen * 100 >= total * 99 {
            break;
        }
    }
    println!(
        "cancel.latency.ms under load: n={total} p99<={p99}ms max={:?}ms",
        hist.max()
    );
    // Waiters poll every 2ms; anything near a second means the token
    // wasn't actually interrupting the wait.
    assert!(p99 < 1_000, "cancel ack latency p99 too high: {p99}ms");
}
