//! Concurrent stage-scheduler harness.
//!
//! Three layers of evidence that `hive.exec.parallel` never changes
//! results:
//!
//! 1. **Differential sweep** — all 22 TPC-H queries × both engines ×
//!    {parallel on, off} must produce *byte-identical* collected rows
//!    and identical per-stage record volumes (scheduling must not
//!    perturb any stage's work, only when it runs).
//! 2. **Property tests** — proptest-generated random DAGs (≤16 stages)
//!    scheduled under thread caps 1/2/8: every execution is a valid
//!    topological order, the `sched.max.concurrent` gauge never
//!    exceeds the cap, and outputs are deterministic.
//! 3. **Chaos interplay** — seeded `hive.ft.*` fault injection over a
//!    genuinely branching (diamond) plan: a crashed stage retries (or
//!    the whole plan falls back) without corrupting concurrently
//!    running sibling stages' outputs.

use hdm_common::conf as keys;
use hdm_core::sched::run_dag;
use hdm_core::{Driver, EngineKind, QueryResult};
use hdm_obs::ObsHandle;
use hdm_storage::FormatKind;
use hdm_workloads::{branch, tpch};
use proptest::prelude::*;
use std::sync::Mutex;

fn fresh_tpch_driver() -> Driver {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, FormatKind::Text).expect("load tpch");
    d
}

fn set_parallel(d: &mut Driver, on: bool, threads: usize) {
    d.conf_mut().set(keys::KEY_EXEC_PARALLEL, on);
    d.conf_mut().set(keys::KEY_EXEC_PARALLEL_THREADS, threads);
}

fn set_pipelined(d: &mut Driver, on: bool) {
    d.conf_mut().set(keys::KEY_EXEC_PIPELINED, on);
}

/// Canonicalize a result for comparison *across* pipelining arms.
///
/// Within one arm the scheduler guarantees byte-identical rows, but
/// between `hive.exec.pipelined` on and off the consumer's task count
/// heuristic sees different input-size estimates (streamed partitions
/// carry no byte sizes), so reduce partitioning — and with it row order
/// and float accumulation order — may legitimately differ. Sort the
/// lines and canonicalize float cells before comparing.
fn normalize(r: &QueryResult) -> Vec<String> {
    let mut lines: Vec<String> = r
        .to_lines()
        .iter()
        .map(|l| {
            l.split('\t')
                .map(
                    |cell| match cell.contains('.').then(|| cell.parse::<f64>()) {
                        Some(Ok(v)) => format!("{v:.5e}"),
                        _ => cell.to_string(),
                    },
                )
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();
    lines.sort();
    lines
}

/// Per-stage `(map task records, reduce task records)` — the volume
/// signature that must be untouched by scheduling.
fn stage_record_volumes(r: &QueryResult) -> Vec<(Vec<u64>, Vec<u64>)> {
    r.stages
        .iter()
        .map(|s| {
            (
                s.volumes.maps.iter().map(|m| m.records).collect(),
                s.volumes.reduces.iter().map(|a| a.records).collect(),
            )
        })
        .collect()
}

/// The differential sweep: 22 queries × {DataMPI, MapReduce} ×
/// {`hive.exec.parallel` on, off}. Rows must be byte-identical (not
/// merely set-equal): the scheduler may only reorder stage *wall-clock*
/// placement, never any stage's inputs, outputs, or the id-indexed
/// result order.
#[test]
fn all_22_queries_identical_parallel_vs_sequential_on_both_engines() {
    let mut d = fresh_tpch_driver();
    for n in tpch::queries::all() {
        for engine in [EngineKind::DataMpi, EngineKind::Hadoop] {
            set_parallel(&mut d, false, 1);
            let sequential = d
                .execute_on(tpch::queries::query(n), engine)
                .unwrap_or_else(|e| panic!("Q{n} sequential failed on {engine:?}: {e}"));
            set_parallel(&mut d, true, 8);
            let parallel = d
                .execute_on(tpch::queries::query(n), engine)
                .unwrap_or_else(|e| panic!("Q{n} parallel failed on {engine:?}: {e}"));
            assert_eq!(
                sequential.to_lines(),
                parallel.to_lines(),
                "Q{n} on {engine:?}: rows diverge between parallel and sequential"
            );
            assert_eq!(
                stage_record_volumes(&sequential),
                stage_record_volumes(&parallel),
                "Q{n} on {engine:?}: per-stage record volumes diverge"
            );
        }
    }
}

/// A genuinely branching DAG (two filter-scan roots feeding a join)
/// agrees across engines and parallel modes, and its trace shows the
/// scheduler at work: per-stage span tracks and a concurrency peak
/// that never exceeds the configured cap.
#[test]
fn diamond_plan_identical_across_modes_with_capped_overlap() {
    let mut d = Driver::in_memory();
    branch::load(&mut d, 2000).expect("load branch tables");
    let plan = branch::diamond_plan();
    let sorted = |r: &QueryResult| {
        let mut lines = r.to_lines();
        lines.sort();
        lines
    };

    let mut baseline: Option<Vec<String>> = None;
    for engine in [EngineKind::DataMpi, EngineKind::Hadoop] {
        set_parallel(&mut d, false, 1);
        let sequential = d.execute_raw_plan(&plan, engine).expect("sequential run");
        set_parallel(&mut d, true, 2);
        d.conf_mut().set(keys::KEY_OBS_ENABLED, true);
        let parallel = d.execute_raw_plan(&plan, engine).expect("parallel run");
        d.conf_mut().set(keys::KEY_OBS_ENABLED, false);

        // Same engine: byte-identical. Across engines: same sorted set
        // (join output order is engine-specific).
        assert_eq!(sequential.to_lines(), parallel.to_lines(), "{engine:?}");
        let lines = sorted(&parallel);
        assert!(!lines.is_empty());
        if let Some(first) = &baseline {
            assert_eq!(first, &lines, "engines disagree on the diamond join");
        } else {
            baseline = Some(lines);
        }

        let snap = d.last_obs_snapshot().expect("obs snapshot");
        let peak = snap
            .gauges
            .iter()
            .find(|(n, _, _)| n == "sched.max.concurrent")
            .map(|(_, _, v)| *v)
            .expect("scheduler gauge recorded");
        assert!(
            (1..=2).contains(&peak),
            "{engine:?}: peak concurrency {peak} out of [1, 2]"
        );
        // Scheduler + phase spans live on per-stage tracks.
        for stage in 0..3 {
            let track = format!("stage{stage}");
            let names: Vec<&str> = snap
                .spans
                .iter()
                .filter(|s| s.track == track)
                .map(|s| s.name.as_str())
                .collect();
            assert!(
                names.contains(&"sched.run"),
                "{engine:?} {track}: {names:?}"
            );
            let phase = if stage == 2 { "join" } else { "map-only" };
            assert!(names.contains(&phase), "{engine:?} {track}: {names:?}");
        }
    }
}

/// The pipelined differential sweep: 22 queries × {DataMPI, MapReduce}
/// × {`hive.exec.pipelined` on, off}. Streaming intermediates across
/// stage boundaries may repartition downstream work but must never
/// change the result set (on the Hadoop engine the knob is a no-op and
/// both arms are the barrier scheduler).
#[test]
fn all_22_queries_identical_pipelined_vs_materialized_on_both_engines() {
    let mut d = fresh_tpch_driver();
    set_parallel(&mut d, true, 8);
    for n in tpch::queries::all() {
        for engine in [EngineKind::DataMpi, EngineKind::Hadoop] {
            set_pipelined(&mut d, false);
            let materialized = d
                .execute_on(tpch::queries::query(n), engine)
                .unwrap_or_else(|e| panic!("Q{n} materialized failed on {engine:?}: {e}"));
            set_pipelined(&mut d, true);
            let pipelined = d
                .execute_on(tpch::queries::query(n), engine)
                .unwrap_or_else(|e| panic!("Q{n} pipelined failed on {engine:?}: {e}"));
            assert_eq!(
                normalize(&materialized),
                normalize(&pipelined),
                "Q{n} on {engine:?}: rows diverge between pipelined and materialized"
            );
        }
    }
}

/// The deep linear chain (scan → 4 aggregates → sort) produces one
/// canonical result set across engines × pipelining × thread caps —
/// the workload where pipelining streams *every* stage boundary, so
/// any buffering/replay/ordering bug shows up as a row diff here.
#[test]
fn deep_chain_identical_across_engines_and_pipelining_modes() {
    let mut d = Driver::in_memory();
    branch::load_deep(&mut d, 500).expect("load deep chain table");
    let plan = branch::deep_chain_plan(4);
    let mut baseline: Option<Vec<String>> = None;
    for engine in [EngineKind::DataMpi, EngineKind::Hadoop] {
        for pipelined in [false, true] {
            for (par, threads) in [(false, 1), (true, 8)] {
                set_parallel(&mut d, par, threads);
                set_pipelined(&mut d, pipelined);
                let r = d.execute_raw_plan(&plan, engine).unwrap_or_else(|e| {
                    panic!("deep chain failed on {engine:?} pipelined={pipelined} threads={threads}: {e}")
                });
                let lines = normalize(&r);
                assert_eq!(lines.len(), 500);
                if let Some(first) = &baseline {
                    assert_eq!(
                        first, &lines,
                        "{engine:?} pipelined={pipelined} threads={threads} diverges"
                    );
                } else {
                    baseline = Some(lines);
                }
            }
        }
    }
}

/// Structural evidence that pipelining actually streams: on the DataMPI
/// engine every intermediate stage of the deep chain hands its
/// partitions over in memory (no part files) and the stream counters
/// record the traffic.
#[test]
fn pipelined_deep_chain_streams_partitions_without_files() {
    let mut d = Driver::in_memory();
    branch::load_deep(&mut d, 400).expect("load deep chain table");
    set_parallel(&mut d, true, 8);
    d.conf_mut().set(keys::KEY_OBS_ENABLED, true);
    let plan = branch::deep_chain_plan(3);
    let r = d
        .execute_raw_plan(&plan, EngineKind::DataMpi)
        .expect("pipelined deep chain");
    assert_eq!(r.rows.len(), 400);
    let last = r.stages.len() - 1;
    for stage in &r.stages[..last] {
        assert!(
            stage.output_paths.is_empty(),
            "streamed stage wrote part files: {:?}",
            stage.output_paths
        );
    }
    assert!(
        !r.stages[last].output_paths.is_empty(),
        "the collect stage still materializes its result"
    );
    let snap = d.last_obs_snapshot().expect("obs snapshot");
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, v)| *v)
            .sum()
    };
    assert!(counter("pipe.partitions.committed") > 0);
    assert!(
        counter("pipe.rows.streamed") >= 400 * 4,
        "four streamed boundaries × 400 rows"
    );
}

/// Misconfigured scheduler knobs fail queries loudly instead of
/// silently running sequentially.
#[test]
fn invalid_parallel_conf_is_an_error() {
    let mut d = Driver::in_memory();
    d.execute("CREATE TABLE t (k BIGINT)").unwrap();
    d.conf_mut().set(keys::KEY_EXEC_PARALLEL_THREADS, 0);
    assert!(d.execute("SELECT k FROM t").is_err());
    d.conf_mut().set(keys::KEY_EXEC_PARALLEL_THREADS, 4);
    d.conf_mut().set(keys::KEY_EXEC_PARALLEL, "sometimes");
    assert!(d.execute("SELECT k FROM t").is_err());
    d.conf_mut().set(keys::KEY_EXEC_PARALLEL, true);
    assert!(d.execute("SELECT k FROM t").is_ok());
}

/// Scheduler events: interleaving-accurate start/finish log. A start
/// push happens strictly after every dependency's finish push (the
/// dispatcher only readies a child after retiring its last dep), so
/// scanning the log validates topological execution.
#[derive(Clone, Copy, PartialEq)]
enum Ev {
    Start(usize),
    Finish(usize),
}

fn assert_topological(deps: &[Vec<usize>], events: &[Ev]) {
    let mut finished = vec![false; deps.len()];
    for ev in events {
        match *ev {
            Ev::Start(s) => {
                for &dep in deps.get(s).map(Vec::as_slice).unwrap_or(&[]) {
                    assert!(
                        finished[dep],
                        "stage {s} started before its dependency {dep} finished"
                    );
                }
            }
            Ev::Finish(s) => finished[s] = true,
        }
    }
    assert!(finished.iter().all(|&f| f), "not every stage ran");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs of up to 16 stages with random back-edges, under
    /// thread caps 1/2/8: the schedule is a valid topological
    /// execution, the `sched.max.concurrent` gauge never exceeds the
    /// cap, and the id-indexed outputs are identical on every run.
    #[test]
    fn random_dags_schedule_topologically_under_caps(
        raw in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 0..4),
            1..17,
        )
    ) {
        // Stage i may only depend on stages < i: acyclic by construction
        // (run_dag re-validates independently).
        let deps: Vec<Vec<usize>> = raw
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                if i == 0 {
                    Vec::new()
                } else {
                    ds.iter().map(|d| d % i).collect()
                }
            })
            .collect();
        let expected: Vec<usize> = (0..deps.len()).map(|s| s * 7 + 1).collect();
        for threads in [1usize, 2, 8] {
            let obs = ObsHandle::enabled_with_stride(1);
            let events: Mutex<Vec<Ev>> = Mutex::new(Vec::new());
            let out = run_dag(&deps, threads, &obs, &hdm_common::CancelToken::default(), |stage| {
                events.lock().unwrap().push(Ev::Start(stage));
                // A touch of work so schedules genuinely interleave.
                std::thread::yield_now();
                events.lock().unwrap().push(Ev::Finish(stage));
                Ok(stage * 7 + 1)
            })
            .unwrap();
            prop_assert_eq!(&out, &expected, "threads={}", threads);
            assert_topological(&deps, &events.into_inner().unwrap());
            let peak = obs
                .snapshot()
                .gauges
                .iter()
                .find(|(n, _, _)| n == "sched.max.concurrent")
                .map(|(_, _, v)| *v)
                .unwrap_or(0);
            prop_assert!(
                peak >= 1 && peak <= threads as i64,
                "cap {} exceeded: peak {}", threads, peak
            );
        }
    }

    /// Chaos interplay: seeded fault injection over the branching
    /// diamond plan. Whatever the seed crashes — one branch mid-stream,
    /// the join, storage reads — the run must recover (task retries,
    /// then engine fallback) and match the fault-free result set:
    /// a crashed stage never corrupts its concurrently-running
    /// sibling's output.
    #[test]
    fn chaos_diamond_preserves_sibling_outputs(seed in 0u64..1_000_000) {
        let mut d = Driver::in_memory();
        branch::load(&mut d, 600).unwrap();
        set_parallel(&mut d, true, 4);
        let plan = branch::diamond_plan();
        let sorted = |r: QueryResult| {
            let mut lines = r.to_lines();
            lines.sort();
            lines
        };
        let clean = sorted(d.execute_raw_plan(&plan, EngineKind::DataMpi).unwrap());
        let c = d.conf_mut();
        c.set(keys::KEY_OBS_ENABLED, true);
        c.set(keys::KEY_FT_ENABLED, true);
        c.set(keys::KEY_FT_SEED, seed);
        c.set(keys::KEY_FT_BACKOFF_BASE_MS, 1);
        c.set(keys::KEY_FT_RECV_TIMEOUT_MS, 400);
        let chaotic = d
            .execute_raw_plan(&plan, EngineKind::DataMpi)
            .unwrap_or_else(|e| panic!("diamond failed under fault seed {seed}: {e}"));
        prop_assert_eq!(clean, sorted(chaotic), "diamond diverged under fault seed {}", seed);
    }

    /// Chaos × pipelining: fault injection over the fully-streamed deep
    /// chain. A crashed task's retry must *replay* its partition into
    /// the live stream (attempt-aware commit) — or the whole plan falls
    /// back — without the downstream consumer ever observing a mix of
    /// attempts. The clean arm runs pipelined too, so this is
    /// stream-replay vs stream, not stream vs files.
    #[test]
    fn chaos_deep_chain_replays_streamed_partitions(seed in 0u64..1_000_000) {
        let mut d = Driver::in_memory();
        branch::load_deep(&mut d, 300).unwrap();
        set_parallel(&mut d, true, 4);
        let plan = branch::deep_chain_plan(3);
        let clean = normalize(&d.execute_raw_plan(&plan, EngineKind::DataMpi).unwrap());
        let c = d.conf_mut();
        c.set(keys::KEY_FT_ENABLED, true);
        c.set(keys::KEY_FT_SEED, seed);
        c.set(keys::KEY_FT_BACKOFF_BASE_MS, 1);
        c.set(keys::KEY_FT_RECV_TIMEOUT_MS, 400);
        let chaotic = d
            .execute_raw_plan(&plan, EngineKind::DataMpi)
            .unwrap_or_else(|e| panic!("deep chain failed under fault seed {seed}: {e}"));
        prop_assert_eq!(
            clean,
            normalize(&chaotic),
            "deep chain diverged under fault seed {}", seed
        );
    }
}
