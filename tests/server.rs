//! Multi-tenant serving harness (`hdm-server`).
//!
//! The serving contract: rows served through an [`HdmServer`] session —
//! cached or not, queued or not, faults on or off — match a solo
//! single-session run of the same statement with the same conf and
//! engine. Fault-free paths must be *byte-identical* (the byte-stability
//! guarantee of the underlying engines); chaos runs are compared with
//! the same float-canonicalized normalization the fault-recovery suite
//! uses, because retried attempts may re-sum partitions in a different
//! order.

use hdm_common::conf as keys;
use hdm_core::Driver;
use hdm_server::HdmServer;
use hdm_storage::{FormatKind, OrcDataCache};
use hdm_workloads::tpch;
use proptest::prelude::*;
use std::sync::Arc;

fn fresh_tpch_driver(format: FormatKind) -> Driver {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, format).expect("load tpch");
    d
}

fn lines(d: &Driver, n: usize) -> Vec<String> {
    d.execute(tpch::queries::query(n))
        .unwrap_or_else(|e| panic!("solo Q{n} failed: {e}"))
        .to_lines()
}

/// Sorted-line comparison with float canonicalization — only for chaos
/// arms, where retries may legitimately differ in last-ulp float cells.
fn normalize(mut lines: Vec<String>) -> Vec<String> {
    for line in &mut lines {
        let fields: Vec<String> = line
            .split('\t')
            .map(|f| match f.contains('.').then(|| f.parse::<f64>()) {
                Some(Ok(v)) => format!("{v:.5e}"),
                _ => f.to_string(),
            })
            .collect();
        *line = fields.join("\t");
    }
    lines.sort();
    lines
}

/// Satellite 1 regression: two sessions running Q1 and Q6 concurrently
/// return rows byte-identical to a solo single-session run.
#[test]
fn concurrent_sessions_match_solo_byte_identical() {
    let solo = fresh_tpch_driver(FormatKind::Text);
    let expect_q1 = lines(&solo, 1);
    let expect_q6 = lines(&solo, 6);

    let server = HdmServer::over(fresh_tpch_driver(FormatKind::Text)).expect("server");
    let mut handles = Vec::new();
    for (tenant, n, expect) in [
        ("alpha", 1usize, expect_q1.clone()),
        ("beta", 6usize, expect_q6.clone()),
    ] {
        let session = server.session(tenant);
        handles.push(std::thread::spawn(move || {
            for _ in 0..3 {
                let got = session
                    .execute(tpch::queries::query(n))
                    .unwrap_or_else(|e| panic!("Q{n} via {tenant}: {e}"))
                    .to_lines();
                assert_eq!(got, expect, "Q{n} through hdm-server diverged from solo");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 2 sessions x 3 runs: every query either executed or hit the cache.
    let s = server.stats();
    assert_eq!(s.admitted + s.result_hits, 6);
    assert!(
        s.result_hits >= 4,
        "repeats should hit the result cache: {s:?}"
    );
}

/// A result-cache hit is byte-identical to the cold run and counted.
#[test]
fn result_cache_hit_is_byte_identical() {
    let server = HdmServer::over(fresh_tpch_driver(FormatKind::Text)).expect("server");
    let session = server.session("t");
    let cold = session.execute(tpch::queries::query(6)).unwrap();
    let warm = session.execute(tpch::queries::query(6)).unwrap();
    assert_eq!(warm.to_lines(), cold.to_lines());
    assert_eq!(warm.columns, cold.columns);
    // Whitespace-normalized text shares the entry; case differences don't.
    let reformatted = format!("  {}  ", tpch::queries::query(6).replace('\n', "\n\t"));
    let spaced = session.execute(&reformatted).unwrap();
    assert_eq!(spaced.to_lines(), cold.to_lines());
    let s = server.stats();
    assert_eq!((s.result_hits, s.result_misses), (2, 1));
}

/// A reload bumps the table version and invalidates dependent entries;
/// entries over other tables survive.
#[test]
fn reload_invalidates_dependent_entries_only() {
    let driver = Driver::in_memory();
    driver
        .execute(
            "CREATE TABLE a (k BIGINT); CREATE TABLE b (k BIGINT); \
             INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (10)",
        )
        .unwrap();
    let server = HdmServer::over(driver).expect("server");
    let session = server.session("t");
    let qa = "SELECT k FROM a ORDER BY k";
    let qb = "SELECT k FROM b ORDER BY k";
    assert_eq!(session.execute(qa).unwrap().to_lines(), vec!["1", "2"]);
    assert_eq!(session.execute(qb).unwrap().to_lines(), vec!["10"]);

    // Reload `a`: its cached answer must not survive.
    session.execute("INSERT INTO a VALUES (3)").unwrap();
    assert_eq!(
        session.execute(qa).unwrap().to_lines(),
        vec!["1", "2", "3"],
        "stale cached rows served after a reload"
    );
    // `b` was untouched: its entry still serves.
    let hits_before = server.stats().result_hits;
    assert_eq!(session.execute(qb).unwrap().to_lines(), vec!["10"]);
    let s = server.stats();
    assert_eq!(s.result_hits, hits_before + 1);
    let rc = server.result_cache_stats().expect("result cache on");
    assert!(rc.invalidations >= 1, "reload must invalidate: {rc:?}");
}

/// ORC scans under a cache far smaller than the dataset keep evicting
/// and stay byte-identical to the uncached solo run.
#[test]
fn orc_eviction_under_tiny_cache_is_correct() {
    let solo = fresh_tpch_driver(FormatKind::Orc);
    let expect_q1 = lines(&solo, 1);
    let expect_q6 = lines(&solo, 6);

    let mut driver = fresh_tpch_driver(FormatKind::Orc);
    // Pin a deliberately tiny byte budget (the conf knob's floor is
    // 1 MB, which can hold this whole scale factor) and disable the
    // result cache so every run re-scans through the data cache.
    driver.conf_mut().set(keys::KEY_SERVER_IO_CACHE_MB, 0);
    driver.conf_mut().set(keys::KEY_SERVER_RESULT_CACHE, false);
    let root = driver.metastore().storage.root.clone();
    let cache = Arc::new(OrcDataCache::new(16 * 1024, &format!("{root}/")));
    driver
        .dfs()
        .attach_read_cache(Some(cache.clone() as Arc<dyn hdm_dfs::RangeCache>));
    let server = HdmServer::over(driver).expect("server");
    let session = server.session("t");
    for _ in 0..2 {
        assert_eq!(
            session.execute(tpch::queries::query(1)).unwrap().to_lines(),
            expect_q1
        );
        assert_eq!(
            session.execute(tpch::queries::query(6)).unwrap().to_lines(),
            expect_q6
        );
    }
    let s = cache.stats();
    assert!(s.evictions > 0, "16 KiB budget must evict: {s:?}");
    assert!(s.bytes <= 16 * 1024, "budget overrun: {s:?}");
}

/// The `hive.server.io.cache.mb` knob end-to-end: a warm repeat of an
/// ORC scan serves row-group bytes from the shared cache.
#[test]
fn io_cache_knob_serves_warm_scans() {
    let mut driver = fresh_tpch_driver(FormatKind::Orc);
    driver.conf_mut().set(keys::KEY_SERVER_IO_CACHE_MB, 8);
    driver.conf_mut().set(keys::KEY_SERVER_RESULT_CACHE, false);
    let server = HdmServer::over(driver).expect("server");
    let session = server.session("t");
    let cold = session.execute(tpch::queries::query(6)).unwrap().to_lines();
    let warm = session.execute(tpch::queries::query(6)).unwrap().to_lines();
    assert_eq!(warm, cold);
    let io = server.io_cache_stats().expect("io cache on");
    assert!(io.hits > 0, "warm scan must hit the data cache: {io:?}");
    assert_eq!(server.stats().result_hits, 0, "result cache was off");
}

/// Bounded admission under a storm: every query either runs (and is
/// byte-identical), hits the cache, or is rejected with the admission
/// error — and the counters account for all of them.
#[test]
fn admission_storm_accounts_for_every_query() {
    let mut driver = fresh_tpch_driver(FormatKind::Text);
    driver.conf_mut().set(keys::KEY_SERVER_POOL_SIZE, 1);
    driver.conf_mut().set(keys::KEY_SERVER_QUEUE_MAX, 2);
    let expect = {
        let solo = fresh_tpch_driver(FormatKind::Text);
        lines(&solo, 6)
    };
    let server = HdmServer::over(driver).expect("server");
    let mut handles = Vec::new();
    for i in 0..8 {
        let session = server.session(&format!("t{}", i % 4));
        let expect = expect.clone();
        handles.push(std::thread::spawn(move || {
            match session.execute(tpch::queries::query(6)) {
                Ok(r) => assert_eq!(r.to_lines(), expect),
                Err(e) => assert!(
                    e.to_string().contains("admission rejected"),
                    "unexpected failure: {e}"
                ),
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = server.stats();
    assert_eq!(s.admitted + s.rejected + s.result_hits, 8, "{s:?}");
}

/// Out-of-range `hive.server.*` knobs fail server construction.
#[test]
fn server_rejects_out_of_range_knobs() {
    let mut driver = Driver::in_memory();
    driver.conf_mut().set(keys::KEY_SERVER_POOL_SIZE, 0);
    let err = HdmServer::over(driver).unwrap_err();
    assert!(
        err.to_string().contains(keys::KEY_SERVER_POOL_SIZE),
        "{err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Chaos under concurrent load: seeded fault injection across four
    /// simultaneously executing sessions still returns every query's
    /// clean-baseline rows (float-normalized, as in the fault-recovery
    /// suite — retries may re-sum partitions).
    #[test]
    fn chaos_under_concurrent_load_matches_clean_baseline(seed in 1u64..1 << 32) {
        let queries = [1usize, 6, 12, 14];
        let solo = fresh_tpch_driver(FormatKind::Text);
        let baselines: Vec<Vec<String>> =
            queries.iter().map(|&n| normalize(lines(&solo, n))).collect();

        let server = HdmServer::over(fresh_tpch_driver(FormatKind::Text)).expect("server");
        let mut handles = Vec::new();
        for (i, (&n, expect)) in queries.iter().zip(baselines).enumerate() {
            let mut session = server.session(&format!("t{i}"));
            let c = session.conf_mut();
            c.set(keys::KEY_FT_ENABLED, true);
            c.set(keys::KEY_FT_SEED, seed + i as u64);
            c.set(keys::KEY_FT_BACKOFF_BASE_MS, 1);
            c.set(keys::KEY_FT_RECV_TIMEOUT_MS, 400);
            handles.push(std::thread::spawn(move || {
                let got = session
                    .execute(tpch::queries::query(n))
                    .unwrap_or_else(|e| panic!("Q{n} under chaos: {e}"));
                assert_eq!(
                    normalize(got.to_lines()),
                    expect,
                    "Q{n} diverged under seeded faults + concurrency"
                );
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
