//! Shuffle-layer properties spanning `hdm-mpi`, `hdm-datampi`, and
//! `hdm-mapred`: exactly-once delivery, comparator-ordered grouping,
//! and equivalence between the two engines' shuffles and between
//! DataMPI's two communication styles.

use hdm_common::kv::{BytesComparator, KvPair};
use hdm_common::partition::HashPartitioner;
use hdm_datampi::{run_bipartite, DataMpiConfig, ShuffleStyle};
use hdm_mapred::{run_mapreduce, MapRedConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

type Records = Vec<(u8, u8)>; // (key, value)

/// Ground truth: multiset of values per key.
fn expected(groups: &[Records]) -> BTreeMap<u8, Vec<u8>> {
    let mut out: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    for task in groups {
        for &(k, v) in task {
            out.entry(k).or_default().push(v);
        }
    }
    for vs in out.values_mut() {
        vs.sort_unstable();
    }
    out
}

fn run_datampi(per_task: &[Records], a_tasks: usize, style: ShuffleStyle) -> BTreeMap<u8, Vec<u8>> {
    let config = DataMpiConfig {
        o_tasks: per_task.len().max(1),
        a_tasks,
        shuffle_style: style,
        send_partition_bytes: 32, // tiny partitions: many messages
        mem_budget_bytes: 128,    // force spills
        ..Default::default()
    };
    let data: Arc<Vec<Records>> = Arc::new(per_task.to_vec());
    let outcome = run_bipartite(
        &config,
        Arc::new(BytesComparator),
        Arc::new(HashPartitioner),
        Arc::new({
            let data = Arc::clone(&data);
            move |rank, ctx: &mut hdm_datampi::OContext| {
                for &(k, v) in data.get(rank).map(|v| v.as_slice()).unwrap_or(&[]) {
                    ctx.send(KvPair::new(vec![k], vec![v]))?;
                }
                Ok(())
            }
        }),
        Arc::new(|_rank, ctx: &mut hdm_datampi::AContext| {
            let mut got: Vec<(u8, Vec<u8>)> = Vec::new();
            while let Some((key, values)) = ctx.next_group() {
                got.push((key[0], values.iter().map(|v| v[0]).collect()));
            }
            Ok(got)
        }),
    )
    .expect("datampi job");
    collect_groups(outcome.a_results)
}

fn run_hadoop(per_task: &[Records], reduce_tasks: usize) -> BTreeMap<u8, Vec<u8>> {
    let config = MapRedConfig {
        map_tasks: per_task.len().max(1),
        reduce_tasks,
        sort_buffer_bytes: 64, // force spills
        concurrency: 4,
        ..Default::default()
    };
    let data: Arc<Vec<Records>> = Arc::new(per_task.to_vec());
    let outcome = run_mapreduce(
        &config,
        Arc::new(BytesComparator),
        Arc::new(HashPartitioner),
        Arc::new({
            let data = Arc::clone(&data);
            move |rank, ctx: &mut hdm_mapred::MapContext| {
                for &(k, v) in data.get(rank).map(|v| v.as_slice()).unwrap_or(&[]) {
                    ctx.collect(KvPair::new(vec![k], vec![v]))?;
                }
                Ok(())
            }
        }),
        Arc::new(|_rank, ctx: &mut hdm_mapred::ReduceContext| {
            let mut got: Vec<(u8, Vec<u8>)> = Vec::new();
            while let Some((key, values)) = ctx.next_group() {
                got.push((key[0], values.iter().map(|v| v[0]).collect()));
            }
            Ok(got)
        }),
    )
    .expect("hadoop job");
    collect_groups(outcome.reduce_results)
}

fn collect_groups(per_reducer: Vec<Vec<(u8, Vec<u8>)>>) -> BTreeMap<u8, Vec<u8>> {
    let mut out: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    for groups in per_reducer {
        let mut last: Option<u8> = None;
        for (k, mut vs) in groups {
            // Keys must arrive strictly increasing per reducer, and a
            // key must never appear in two reducers.
            if let Some(prev) = last {
                assert!(prev < k, "group order violated: {prev} then {k}");
            }
            last = Some(k);
            assert!(!out.contains_key(&k), "key {k} delivered to two reducers");
            vs.sort_unstable();
            out.insert(k, vs);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn exactly_once_delivery_everywhere(
        per_task in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..60),
            1..5,
        ),
        a_tasks in 1usize..5,
    ) {
        let truth = expected(&per_task);
        prop_assert_eq!(&run_datampi(&per_task, a_tasks, ShuffleStyle::NonBlocking), &truth);
        prop_assert_eq!(&run_datampi(&per_task, a_tasks, ShuffleStyle::Blocking), &truth);
        prop_assert_eq!(&run_hadoop(&per_task, a_tasks), &truth);
    }
}

#[test]
fn heavy_skew_single_key() {
    // Every record has the same key: one reducer owns everything.
    let per_task: Vec<Records> = (0..4)
        .map(|t| (0..100).map(|i| (42u8, (t * 100 + i) as u8)).collect())
        .collect();
    let truth = expected(&per_task);
    assert_eq!(run_datampi(&per_task, 4, ShuffleStyle::NonBlocking), truth);
    assert_eq!(run_hadoop(&per_task, 4), truth);
}

#[test]
fn empty_senders_are_fine() {
    let per_task: Vec<Records> = vec![Vec::new(), vec![(1, 1)], Vec::new()];
    let truth = expected(&per_task);
    assert_eq!(run_datampi(&per_task, 3, ShuffleStyle::Blocking), truth);
    assert_eq!(run_hadoop(&per_task, 3), truth);
}

#[test]
fn many_reducers_fewer_keys() {
    // More reducers than distinct keys: some reducers see nothing.
    let per_task: Vec<Records> = vec![vec![(1, 1), (2, 2), (1, 3)]];
    let truth = expected(&per_task);
    assert_eq!(run_datampi(&per_task, 4, ShuffleStyle::NonBlocking), truth);
    assert_eq!(run_hadoop(&per_task, 4), truth);
}
