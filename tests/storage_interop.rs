//! Cross-crate storage properties: tables written in either format are
//! readable by the full query stack; ORC's optimizations (column
//! pruning, predicate pushdown) change bytes read but never results.

use hdm_common::row::Row;
use hdm_common::value::Value;
use hdm_core::{Driver, EngineKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn load_table(d: &mut Driver, fmt: &str, rows: &[Row]) {
    d.execute(&format!(
        "CREATE TABLE data (id BIGINT, tag STRING, price DOUBLE, day DATE) STORED AS {fmt}"
    ))
    .expect("ddl");
    d.load_rows("data", rows).expect("load");
}

fn random_rows(seed: u64, n: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Row::from(vec![
                Value::Long(i as i64),
                if rng.random_bool(0.1) {
                    Value::Null
                } else {
                    Value::Str(format!("tag{}", rng.random_range(0..5)))
                },
                Value::Double((rng.random_range(-500.0f64..500.0) * 100.0).round() / 100.0),
                Value::date_from_ymd(1995, rng.random_range(1..13), rng.random_range(1..29)),
            ])
        })
        .collect()
}

const PROBES: &[&str] = &[
    "SELECT COUNT(*) FROM data",
    "SELECT id, tag FROM data WHERE price > 0 ORDER BY id",
    "SELECT tag, COUNT(*) AS n, SUM(price) AS s FROM data GROUP BY tag ORDER BY tag",
    "SELECT id FROM data WHERE day >= DATE '1995-06-01' AND price BETWEEN -100 AND 100 ORDER BY id",
    "SELECT MAX(day), MIN(day) FROM data",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn formats_are_query_equivalent(seed in any::<u64>(), n in 1usize..300) {
        let rows = random_rows(seed, n);
        let mut text = Driver::in_memory();
        load_table(&mut text, "TEXTFILE", &rows);
        let mut orc = Driver::in_memory();
        load_table(&mut orc, "ORC", &rows);
        for sql in PROBES {
            let a = text.execute(sql).expect("text").to_lines();
            let b = orc.execute(sql).expect("orc").to_lines();
            prop_assert_eq!(a, b, "format mismatch for {}", sql);
        }
    }
}

#[test]
fn orc_stores_fewer_bytes_than_text() {
    let rows = random_rows(42, 5000);
    let mut text = Driver::in_memory();
    load_table(&mut text, "TEXTFILE", &rows);
    let mut orc = Driver::in_memory();
    load_table(&mut orc, "ORC", &rows);
    let tb = text
        .metastore()
        .storage
        .table_bytes(text.dfs(), "data")
        .unwrap();
    let ob = orc
        .metastore()
        .storage
        .table_bytes(orc.dfs(), "data")
        .unwrap();
    assert!(ob < tb, "ORC {ob} should be smaller than Text {tb}");
}

#[test]
fn orc_selective_scan_reads_fewer_bytes() {
    let rows = random_rows(7, 8000);
    let mut orc = Driver::in_memory();
    load_table(&mut orc, "ORC", &rows);
    // Selective predicate + narrow projection: pushdown prunes stripes
    // and the projection prunes columns.
    let selective = orc.execute("SELECT id FROM data WHERE id >= 7900").unwrap();
    let full = orc
        .execute("SELECT id, tag, price, day FROM data WHERE price > -10000.0")
        .unwrap();
    let sel_bytes: u64 = selective
        .stages
        .iter()
        .map(|s| s.volumes.total_input_bytes())
        .sum();
    let full_bytes: u64 = full
        .stages
        .iter()
        .map(|s| s.volumes.total_input_bytes())
        .sum();
    assert!(
        sel_bytes * 3 < full_bytes,
        "selective scan should read far less: {sel_bytes} vs {full_bytes}"
    );
    assert_eq!(selective.rows.len(), 100);
}

#[test]
fn pushdown_off_reads_more_but_same_results() {
    let rows = random_rows(9, 12000); // three ORC stripes: prunable
    let mut orc = Driver::in_memory();
    load_table(&mut orc, "ORC", &rows);
    let sql = "SELECT id FROM data WHERE id < 50 ORDER BY id";
    let with = orc.execute(sql).unwrap();
    orc.conf_mut().set("hive.orc.pushdown", false);
    let without = orc.execute(sql).unwrap();
    assert_eq!(with.to_lines(), without.to_lines());
    let wb: u64 = with
        .stages
        .iter()
        .map(|s| s.volumes.total_input_bytes())
        .sum();
    let wob: u64 = without
        .stages
        .iter()
        .map(|s| s.volumes.total_input_bytes())
        .sum();
    assert!(wb < wob, "pushdown should cut bytes: {wb} vs {wob}");
}

#[test]
fn ctas_across_formats_round_trips() {
    let rows = random_rows(3, 500);
    let mut d = Driver::in_memory();
    load_table(&mut d, "TEXTFILE", &rows);
    d.execute("CREATE TABLE copy_orc STORED AS ORC AS SELECT id, tag, price, day FROM data")
        .unwrap();
    d.execute(
        "CREATE TABLE copy_txt STORED AS TEXTFILE AS SELECT id, tag, price, day FROM copy_orc",
    )
    .unwrap();
    let original = d
        .execute("SELECT id, price FROM data ORDER BY id")
        .unwrap()
        .to_lines();
    let round = d
        .execute("SELECT id, price FROM copy_txt ORDER BY id")
        .unwrap()
        .to_lines();
    assert_eq!(original, round);
}

#[test]
fn engines_read_each_others_insert_overwrite_output() {
    let rows = random_rows(11, 400);
    let mut d = Driver::in_memory();
    load_table(&mut d, "ORC", &rows);
    d.execute("CREATE TABLE agg (tag STRING, n BIGINT) STORED AS ORC")
        .unwrap();
    // Write with DataMPI, read with Hadoop.
    d.execute_on(
        "INSERT OVERWRITE TABLE agg SELECT tag, COUNT(*) AS n FROM data GROUP BY tag",
        EngineKind::DataMpi,
    )
    .unwrap();
    let via_hadoop = d
        .execute_on("SELECT tag, n FROM agg ORDER BY tag", EngineKind::Hadoop)
        .unwrap()
        .to_lines();
    let direct = d
        .execute_on(
            "SELECT tag, COUNT(*) AS n FROM data GROUP BY tag ORDER BY tag",
            EngineKind::Hadoop,
        )
        .unwrap()
        .to_lines();
    assert_eq!(via_hadoop, direct);
}
