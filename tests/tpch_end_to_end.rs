//! End-to-end TPC-H: all 22 queries execute on both engines against a
//! generated dataset, in both storage formats, producing identical
//! results — the functional backbone of the paper's Table II / Figure 12
//! claims ("Hive on DataMPI can fully and transparently support all
//! TPC-H queries").

use hdm_core::{Driver, EngineKind};
use hdm_storage::FormatKind;
use hdm_workloads::tpch;

fn fresh_driver(format: FormatKind) -> Driver {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, format).expect("load tpch");
    d
}

fn run_query(d: &mut Driver, n: usize, engine: EngineKind) -> Vec<String> {
    let result = d
        .execute_on(tpch::queries::query(n), engine)
        .unwrap_or_else(|e| panic!("Q{n} failed on {engine:?}: {e}"));
    result.to_lines()
}

/// Sorted-line comparison with float canonicalization: engines sum
/// partitions in different orders, so floating-point cells can differ in
/// their last ulps. Fractional fields are rounded to 6 significant
/// digits; everything else must match exactly.
fn normalize(mut lines: Vec<String>) -> Vec<String> {
    for line in &mut lines {
        let fields: Vec<String> = line
            .split('\t')
            .map(|f| {
                if f.contains('.') {
                    match f.parse::<f64>() {
                        Ok(x) => format!("{x:.5e}"),
                        Err(_) => f.to_string(),
                    }
                } else {
                    f.to_string()
                }
            })
            .collect();
        *line = fields.join("\t");
    }
    lines.sort();
    lines
}

#[test]
fn all_22_queries_agree_across_engines_text_format() {
    let mut d = fresh_driver(FormatKind::Text);
    for n in tpch::queries::all() {
        let hadoop = normalize(run_query(&mut d, n, EngineKind::Hadoop));
        let datampi = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        assert_eq!(hadoop, datampi, "Q{n}: engines disagree");
    }
}

#[test]
fn all_22_queries_agree_across_formats_on_datampi() {
    let mut dt = fresh_driver(FormatKind::Text);
    let mut do_ = fresh_driver(FormatKind::Orc);
    for n in tpch::queries::all() {
        let text = normalize(run_query(&mut dt, n, EngineKind::DataMpi));
        let orc = normalize(run_query(&mut do_, n, EngineKind::DataMpi));
        assert_eq!(text, orc, "Q{n}: formats disagree");
    }
}

#[test]
fn selected_queries_return_plausible_shapes() {
    let mut d = fresh_driver(FormatKind::Orc);
    // Q1: at most 4 (returnflag, linestatus) groups.
    let q1 = run_query(&mut d, 1, EngineKind::DataMpi);
    assert!((1..=4).contains(&q1.len()), "Q1 groups: {}", q1.len());
    // Q4: at most the 5 order priorities.
    let q4 = run_query(&mut d, 4, EngineKind::DataMpi);
    assert!(q4.len() <= 5);
    // Q6: exactly one row.
    let q6 = run_query(&mut d, 6, EngineKind::DataMpi);
    assert_eq!(q6.len(), 1);
    // Q13: the count distribution must cover every customer.
    let q13 = run_query(&mut d, 13, EngineKind::Hadoop);
    let total: i64 = q13
        .iter()
        .map(|l| l.split('\t').nth(1).unwrap().parse::<i64>().unwrap())
        .sum();
    let customers = d.execute("SELECT COUNT(*) FROM customer").unwrap().rows[0]
        .get(0)
        .as_i64()
        .unwrap();
    assert_eq!(total, customers, "Q13 must cover every customer");
    // Q22: country codes are two digits.
    let q22 = run_query(&mut d, 22, EngineKind::DataMpi);
    for line in &q22 {
        let code = line.split('\t').next().unwrap();
        assert_eq!(code.len(), 2, "bad country code {code}");
    }
}

#[test]
fn enhanced_parallelism_matches_default_results() {
    let mut d = fresh_driver(FormatKind::Text);
    for n in [3, 5, 9, 12] {
        let default_rows = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        d.conf_mut()
            .set(hdm_common::conf::KEY_PARALLELISM, "enhanced");
        let enhanced_rows = normalize(run_query(&mut d, n, EngineKind::DataMpi));
        d.conf_mut()
            .set(hdm_common::conf::KEY_PARALLELISM, "default");
        assert_eq!(
            default_rows, enhanced_rows,
            "Q{n}: parallelism changed results"
        );
    }
}

#[test]
fn stacked_features_still_agree() {
    // Everything at once: ORC storage + enhanced parallelism + DAG
    // execution + blocking shuffle must not change any result.
    let mut base = fresh_driver(FormatKind::Text);
    let mut stacked = fresh_driver(FormatKind::Orc);
    stacked
        .conf_mut()
        .set(hdm_common::conf::KEY_PARALLELISM, "enhanced");
    stacked.conf_mut().set("hive.datampi.dag", true);
    stacked
        .conf_mut()
        .set(hdm_common::conf::KEY_SHUFFLE_STYLE, "blocking");
    for n in [1, 3, 9, 13, 16, 21, 22] {
        let plain = normalize(run_query(&mut base, n, EngineKind::Hadoop));
        let full = normalize(run_query(&mut stacked, n, EngineKind::DataMpi));
        assert_eq!(plain, full, "Q{n}: stacked configuration changed results");
    }
}
