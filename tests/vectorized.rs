//! Vectorized execution differential harness.
//!
//! Pins the tentpole invariant of the columnar operator pipeline:
//! `hive.vectorized.execution.enabled` is a pure performance knob.
//!
//! 1. **Differential sweep** — all 22 TPC-H queries over ORC × both
//!    engines × {pipelined on, off} × {vectorized on, off} must produce
//!    *byte-identical* collected rows within each (engine, pipelined)
//!    arm, and normalized-identical rows across every arm.
//! 2. **Path assertions** — Q1 and Q6 actually take the batched path
//!    (`vec.batches` counter > 0 vectorized-on, == 0 vectorized-off or
//!    on a non-columnar Text table), and a DISTINCT aggregate stage
//!    falls back to the row path per the planner eligibility rule.
//! 3. **Pruning** — a date-clustered ORC load lets Q6's pushed-down
//!    shipdate window prune whole stripes (`orc.stripes.pruned` > 0)
//!    without changing the answer; `hive.orc.pushdown=false` restores
//!    the full scan.

use hdm_common::conf as keys;
use hdm_core::{Driver, EngineKind, QueryResult};
use hdm_storage::FormatKind;
use hdm_workloads::tpch;

fn fresh_orc_tpch_driver() -> Driver {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, FormatKind::Orc).expect("load tpch (orc)");
    d
}

fn set_vectorized(d: &mut Driver, on: bool) {
    d.conf_mut().set(keys::KEY_VECTORIZED, on);
}

fn set_pipelined(d: &mut Driver, on: bool) {
    d.conf_mut().set(keys::KEY_EXEC_PIPELINED, on);
}

/// Canonicalize a result for comparison *across* pipelining arms (see
/// `tests/scheduler.rs`): reduce partitioning may legitimately differ
/// between pipelined on/off, so sort lines and canonicalize floats.
fn normalize(r: &QueryResult) -> Vec<String> {
    let mut lines: Vec<String> = r
        .to_lines()
        .iter()
        .map(|l| {
            l.split('\t')
                .map(
                    |cell| match cell.contains('.').then(|| cell.parse::<f64>()) {
                        Some(Ok(v)) => format!("{v:.5e}"),
                        _ => cell.to_string(),
                    },
                )
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();
    lines.sort();
    lines
}

/// Sum one obs counter across all stages of the last query.
fn counter_sum(d: &Driver, name: &str) -> u64 {
    let snap = d.last_obs_snapshot().expect("obs snapshot");
    snap.counters
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| *v)
        .sum()
}

/// All 22 TPC-H queries × both engines × pipelined {off, on} ×
/// vectorized {off, on}: byte-identical rows within each
/// (engine, pipelined) arm, normalized-identical across all arms.
#[test]
fn tpch_differential_vectorized_on_off() {
    let mut d = fresh_orc_tpch_driver();
    for n in tpch::queries::all() {
        let sql = tpch::queries::query(n);
        let mut baseline: Option<Vec<String>> = None;
        for engine in [EngineKind::DataMpi, EngineKind::Hadoop] {
            for pipelined in [false, true] {
                set_pipelined(&mut d, pipelined);
                set_vectorized(&mut d, false);
                let off = d
                    .execute_on(sql, engine)
                    .unwrap_or_else(|e| panic!("q{n} {engine:?} vec-off: {e}"));
                set_vectorized(&mut d, true);
                let on = d
                    .execute_on(sql, engine)
                    .unwrap_or_else(|e| panic!("q{n} {engine:?} vec-on: {e}"));
                assert_eq!(
                    off.to_lines(),
                    on.to_lines(),
                    "q{n} {engine:?} pipelined={pipelined}: vectorization changed rows"
                );
                let norm = normalize(&on);
                match &baseline {
                    None => baseline = Some(norm),
                    Some(b) => assert_eq!(
                        b, &norm,
                        "q{n} {engine:?} pipelined={pipelined}: arm disagrees with baseline"
                    ),
                }
            }
        }
    }
}

/// Q1 and Q6 actually engage the batched path over ORC — and do not
/// when vectorization is off.
#[test]
fn q1_q6_take_the_batched_path() {
    let mut d = fresh_orc_tpch_driver();
    d.conf_mut().set(keys::KEY_OBS_ENABLED, true);
    for n in [1usize, 6] {
        let sql = tpch::queries::query(n);
        set_vectorized(&mut d, true);
        d.execute_on(sql, EngineKind::DataMpi).expect("vec-on run");
        assert!(
            counter_sum(&d, "vec.batches") > 0,
            "q{n}: expected vec.batches > 0 with vectorization on"
        );
        set_vectorized(&mut d, false);
        d.execute_on(sql, EngineKind::DataMpi).expect("vec-off run");
        assert_eq!(
            counter_sum(&d, "vec.batches"),
            0,
            "q{n}: expected no batches with vectorization off"
        );
    }
}

/// A Text table has no columnar reader: vectorization silently falls
/// back to the row path and still answers correctly.
#[test]
fn text_tables_fall_back_to_row_path() {
    let mut d = Driver::in_memory();
    tpch::load(&mut d, 0.002, 20150701, FormatKind::Text).expect("load tpch (text)");
    d.conf_mut().set(keys::KEY_OBS_ENABLED, true);
    set_vectorized(&mut d, true);
    let r = d
        .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
        .expect("q6 over text");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(counter_sum(&d, "vec.batches"), 0);
}

/// DISTINCT aggregates are row-path-only per the planner eligibility
/// rule; plain aggregates over the same table vectorize.
#[test]
fn distinct_aggregate_falls_back_to_row_path() {
    let mut d = fresh_orc_tpch_driver();
    d.conf_mut().set(keys::KEY_OBS_ENABLED, true);
    set_vectorized(&mut d, true);
    d.execute_on(
        "SELECT COUNT(DISTINCT l_suppkey) FROM lineitem",
        EngineKind::DataMpi,
    )
    .expect("distinct count");
    assert_eq!(
        counter_sum(&d, "vec.batches"),
        0,
        "DISTINCT aggregate stage must stay on the row path"
    );
    d.execute_on("SELECT COUNT(l_suppkey) FROM lineitem", EngineKind::DataMpi)
        .expect("plain count");
    assert!(
        counter_sum(&d, "vec.batches") > 0,
        "plain aggregate over ORC should vectorize"
    );
}

/// Date-clustered ORC stripes let Q6's pushed-down shipdate window
/// prune whole stripes, with the same answer as the unclustered load;
/// disabling pushdown restores the full scan.
#[test]
fn clustered_load_prunes_stripes_on_q6() {
    let mut plain = fresh_orc_tpch_driver();
    set_vectorized(&mut plain, true);
    let expected = normalize(
        &plain
            .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
            .expect("q6 unclustered"),
    );

    let mut d = Driver::in_memory();
    tpch::load_clustered(&mut d, 0.002, 20150701, FormatKind::Orc).expect("clustered load");
    d.conf_mut().set(keys::KEY_OBS_ENABLED, true);
    set_vectorized(&mut d, true);
    let pruned_run = d
        .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
        .expect("q6 clustered");
    assert_eq!(
        normalize(&pruned_run),
        expected,
        "pruning changed the answer"
    );
    assert!(
        counter_sum(&d, "orc.stripes.pruned") > 0,
        "clustered shipdate stripes should be pruned by the Q6 window"
    );
    assert!(counter_sum(&d, "orc.rows.pruned") > 0);

    d.conf_mut().set(keys::KEY_ORC_PUSHDOWN, false);
    let full_scan = d
        .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
        .expect("q6 pushdown off");
    assert_eq!(normalize(&full_scan), expected);
    assert_eq!(
        counter_sum(&d, "orc.stripes.pruned"),
        0,
        "pushdown off must not prune"
    );
}

/// Bad `hive.vectorized.*` values surface as configuration errors.
#[test]
fn invalid_vectorized_conf_is_an_error() {
    let mut d = fresh_orc_tpch_driver();
    d.conf_mut().set(keys::KEY_VECTORIZED_BATCH_SIZE, 0i64);
    let err = d
        .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
        .expect_err("batch size 0 must be rejected");
    assert!(
        err.to_string().contains(keys::KEY_VECTORIZED_BATCH_SIZE),
        "unexpected error: {err}"
    );
    d.conf_mut().set(keys::KEY_VECTORIZED_BATCH_SIZE, 1024i64);
    d.conf_mut().set(keys::KEY_VECTORIZED, "sometimes");
    let err = d
        .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
        .expect_err("non-boolean flag must be rejected");
    assert!(
        err.to_string().contains(keys::KEY_VECTORIZED),
        "unexpected error: {err}"
    );
}

/// Vectorized execution under seeded storage faults: the retry path
/// re-reads columnar splits without corrupting results.
#[test]
fn vectorized_survives_storage_faults() {
    let mut d = fresh_orc_tpch_driver();
    set_vectorized(&mut d, true);
    let clean = d
        .execute_on(tpch::queries::query(6), EngineKind::DataMpi)
        .expect("clean q6")
        .to_lines();
    d.conf_mut().set(keys::KEY_FT_ENABLED, true);
    d.conf_mut().set(keys::KEY_FT_SEED, 20150701i64);
    d.conf_mut().set(keys::KEY_FT_BACKOFF_BASE_MS, 1i64);
    d.conf_mut().set(keys::KEY_FT_RECV_TIMEOUT_MS, 400i64);
    for engine in [EngineKind::DataMpi, EngineKind::Hadoop] {
        let faulted = d
            .execute_on(tpch::queries::query(6), engine)
            .unwrap_or_else(|e| panic!("faulted q6 on {engine:?}: {e}"));
        assert_eq!(faulted.to_lines(), clean, "faults changed q6 on {engine:?}");
    }
}
