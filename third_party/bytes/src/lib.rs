//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, API-compatible subset of `bytes` 1.x: a cheaply-cloneable,
//! reference-counted [`Bytes`], a growable [`BytesMut`], and the [`Buf`] /
//! [`BufMut`] cursor traits. Only the surface the `hdm-*` crates use is
//! implemented; semantics follow the real crate (zero-copy clones and
//! slices, big-endian numeric accessors).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones and [`Bytes::slice`] share one reference-counted allocation,
/// like the real `bytes::Bytes`. The backing store is an `Arc<Vec<u8>>`
/// so `Bytes::from(Vec<u8>)` is zero-copy (the real crate takes ownership
/// of the vec's allocation the same way) and a uniquely-owned whole-buffer
/// view can be reclaimed as mutable storage via [`Bytes::try_into_mut`].
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (no allocation in the real crate; here a single
    /// copy into the shared buffer, made once).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, matching `bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Split off the bytes from `at` onward; `self` keeps `[0, at)`.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Split off the first `at` bytes and return them; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Try to reclaim the backing storage as a [`BytesMut`].
    ///
    /// Succeeds only when this handle is the sole owner of the allocation
    /// and the view covers the whole buffer (no outstanding clones or
    /// slices); otherwise returns `self` unchanged. Mirrors
    /// `bytes::Bytes::try_into_mut` — the hook buffer pools use to recycle
    /// payload allocations once the last reader is done.
    ///
    /// # Errors
    /// Returns `Err(self)` when the allocation is shared or partially
    /// viewed.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        let Bytes { data, start, end } = self;
        if start != 0 || end != data.len() {
            return Err(Bytes { data, start, end });
        }
        match Arc::try_unwrap(data) {
            Ok(vec) => Ok(BytesMut::from(vec)),
            Err(data) => Err(Bytes { data, start, end }),
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, freezable into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// True if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Remove all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.data.drain(..self.read);
        }
        Bytes::from(self.data)
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data, read: 0 }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(mut b: BytesMut) -> Vec<u8> {
        if b.read > 0 {
            b.data.drain(..b.read);
        }
        b.data
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

/// Read cursor over a contiguous byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as one contiguous chunk (always everything here).
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    ///
    /// # Panics
    /// Panics if `cnt > remaining()`, matching `bytes`.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy bytes into `dst`, advancing.
    ///
    /// # Panics
    /// Panics if `dst.len() > remaining()`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    ///
    /// # Panics
    /// Panics on empty input.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Read a big-endian i32.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Read a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
    fn has_remaining(&self) -> bool {
        (**self).has_remaining()
    }
}

/// Write cursor over a growable byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, n: i8) {
        self.put_u8(n as u8);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian i32.
    fn put_i32(&mut self, n: i32) {
        self.put_u32(n as u32);
    }

    /// Append a big-endian i64.
    fn put_i64(&mut self, n: i64) {
        self.put_u64(n as u64);
    }

    /// Append a big-endian f64.
    fn put_f64(&mut self, n: f64) {
        self.put_u64(n.to_bits());
    }

    /// Append a big-endian f32.
    fn put_f32(&mut self, n: f32) {
        self.put_u32(n.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.slice(1..3).as_ref(), &[2, 3]);
    }

    #[test]
    fn split_off_and_to() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let tail = b.split_off(2);
        assert_eq!(b.as_ref(), &[1, 2]);
        assert_eq!(tail.as_ref(), &[3, 4, 5]);
        let mut t = tail;
        let head = t.split_to(1);
        assert_eq!(head.as_ref(), &[3]);
        assert_eq!(t.as_ref(), &[4, 5]);
    }

    #[test]
    fn buf_round_trip_slice() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_i64(-42);
        v.put_f64(1.5);
        let mut r = &v[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i64(), -42);
        assert!((r.get_f64() - 1.5).abs() < 1e-12);
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytesmut_freeze() {
        let mut b = BytesMut::new();
        b.put_slice(b"abc");
        assert_eq!(b.len(), 3);
        let frozen = b.freeze();
        assert_eq!(frozen.as_ref(), b"abc");
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![1u8, 2, 3, 4];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn try_into_mut_reclaims_unique_whole_buffers() {
        let v = vec![5u8; 32];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        // A live clone blocks reclaim.
        let c = b.clone();
        let b = b.try_into_mut().unwrap_err();
        drop(c);
        // A partial view blocks reclaim even when it is the sole owner.
        let part = {
            let mut p = Bytes::from(vec![9u8; 8]);
            p.split_to(2)
        };
        assert!(part.try_into_mut().is_err());
        // Unique + whole buffer reclaims the original allocation.
        let m = b.try_into_mut().unwrap();
        let back: Vec<u8> = m.into();
        assert_eq!(back.as_ptr(), ptr, "reclaim must return the allocation");
        assert_eq!(back, vec![5u8; 32]);
    }

    #[test]
    fn bytesmut_into_vec_respects_read_cursor() {
        let mut m = BytesMut::from(vec![1u8, 2, 3, 4]);
        m.advance(2);
        let v: Vec<u8> = m.into();
        assert_eq!(v, vec![3, 4]);
    }

    #[test]
    fn bytes_buf_advances() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.chunk(), &[8, 7]);
    }
}
