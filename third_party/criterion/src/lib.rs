//! Offline stand-in for `criterion`.
//!
//! A minimal benchmarking harness exposing the macro and method surface
//! the workspace's benches use (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `benchmark_group`, `iter`, `iter_batched`). It runs a
//! fixed warm-up plus a fixed measurement loop and prints mean wall-clock
//! time per iteration — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Measured throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (ignored; every batch is one input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine` over the measurement loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench {id:<44} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Record the group's throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the measurement iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
