//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: MPMC channels with bounded and
//! unbounded flavours, cloneable senders/receivers, `try_send`/`try_recv`,
//! `recv_timeout`, and disconnection detection — the exact surface the
//! `hdm-mpi` simulator and the DataMPI shuffle engine rely on. Built on a
//! `Mutex<VecDeque>` + two `Condvar`s; not as fast as real crossbeam, but
//! semantically equivalent for the simulator's purposes.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message is pushed (wakes receivers).
        not_empty: Condvar,
        /// Signalled when a message is popped (wakes bounded senders).
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`]: the message could not be sent
    /// because all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and all senders
    /// gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<'a, T>(shared: &'a Shared<T>) -> std::sync::MutexGuard<'a, Inner<T>> {
        match shared.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        ///
        /// # Errors
        /// [`SendError`] if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = inner.cap.map(|c| inner.queue.len() >= c).unwrap_or(false);
                if !full {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = match self.shared.not_full.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking send.
        ///
        /// # Errors
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// if every receiver has been dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let full = inner.cap.map(|c| inner.queue.len() >= c).unwrap_or(false);
            if full {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty.
        ///
        /// # Errors
        /// [`RecvError`] if the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.shared.not_empty.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Receive with a deadline.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] if nothing arrives in time,
        /// [`RecvTimeoutError::Disconnected`] if the channel is empty and
        /// every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.shared);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) =
                    match self.shared.not_empty.wait_timeout(inner, deadline - now) {
                        Ok(r) => r,
                        Err(poisoned) => {
                            let r = poisoned.into_inner();
                            (r.0, r.1)
                        }
                    };
                inner = guard;
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.shared);
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterate until the channel is empty *and* disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_blocks_and_delivers_in_order() {
            let (tx, rx) = bounded(2);
            let sender = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            sender.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            drop(rx);
            assert!(matches!(tx.send(3), Err(SendError(3))));
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (tx, rx) = bounded(4);
            let mut senders = Vec::new();
            for s in 0..4 {
                let tx = tx.clone();
                senders.push(thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(s * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for s in senders {
                s.join().unwrap();
            }
            got.sort_unstable();
            let mut expect: Vec<i32> = (0..4)
                .flat_map(|s| (0..50).map(move |i| s * 1000 + i))
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }
}
