//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` / `read()` / `write()` return guards directly, recovering from
//! poisoning instead of returning `Result` (parking_lot has no poisoning).

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, poison-recovering).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard type for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A reader-writer lock (std-backed, poison-recovering).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
