//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic randomized tester: the [`proptest!`] macro, `prop_assert*`
//! macros, [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`/`boxed`/
//! `new_tree`, [`collection::vec`], `any::<T>()`, [`strategy::Just`], range
//! and regex-literal strategies, and a [`test_runner::TestRunner`].
//!
//! Differences from real proptest, deliberate for an offline build:
//! * **No shrinking** — failures report the generated inputs via panic
//!   message instead of minimizing them.
//! * **Deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so CI runs are reproducible; regression files
//!   (`proptest-regressions/`) are ignored.
//! * Regex strategies support the narrow `atom{m,n}` / char-class / `.`
//!   forms used in this repository, not full regex syntax.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::{TestRng, TestRunner};
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }

        /// Produce a value tree (API parity with proptest; no shrinking, so
        /// the tree is just the generated value).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, String> {
            Ok(ValueTree {
                value: self.generate(runner.rng_mut()),
            })
        }
    }

    /// A generated value (proptest's shrinkable tree, minus shrinking).
    #[derive(Debug, Clone)]
    pub struct ValueTree<T> {
        value: T,
    }

    impl<T: Clone> ValueTree<T> {
        /// The generated value.
        pub fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// Type-erased strategy handle.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, strat) in &self.arms {
                if pick < *w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            // Unreachable given `total` is the sum of weights.
            self.arms[0].1.generate(rng)
        }
    }

    /// Uniform strategy over a type's interesting domain (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    /// The `any::<T>()` entry point.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Mix in boundary values now and then, like proptest's
                    // bias toward edge cases.
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => 1,
                        _ => rng.next() as $t,
                    }
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => -1,
                        _ => rng.next() as $t,
                    }
                }
            }
        )*};
    }

    impl_any_int!(i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite-only: the workspace round-trips values through codecs
            // that compare with `==`, where NaN would self-fail.
            match rng.below(16) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::MAX,
                3 => f64::MIN,
                4 => f64::EPSILON,
                _ => {
                    let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (unit - 0.5) * 2e12
                }
            }
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// String strategy from a regex literal. Supports the subset used in
    /// this workspace: concatenations of `.`, `[a-z...]` classes, and
    /// literal characters, each optionally followed by `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom.
            let atom: Atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| {
                            panic!("unclosed character class in pattern {pattern:?}")
                        });
                    let class = parse_class(&chars[i + 1..close]);
                    i = close + 1;
                    Atom::Class(class)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Parse an optional {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().unwrap_or(0),
                        hi.trim().parse::<usize>().unwrap_or(0),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.generate(rng));
            }
        }
        out
    }

    enum Atom {
        AnyChar,
        Literal(char),
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn generate(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Literal(c) => *c,
                Atom::AnyChar => {
                    // Mostly printable ASCII, occasionally multibyte, never
                    // a newline (regex `.` excludes it).
                    match rng.below(8) {
                        0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
                        _ => (0x20u8 + rng.below(0x5f) as u8) as char,
                    }
                }
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    for (a, b) in ranges {
                        let span = (*b as u64) - (*a as u64) + 1;
                        if pick < span {
                            return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
                        }
                        pick -= span;
                    }
                    ranges.first().map(|(a, _)| *a).unwrap_or('a')
                }
            }
        }
    }

    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        ranges
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generate vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min: size.start,
            max: size.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test runner, config, and RNG.
pub mod test_runner {
    /// Runner configuration (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG used by strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded RNG.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound` 0 yields 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Drives strategies; holds config + RNG.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Runner with the given config and seed.
        pub fn with_seed(config: ProptestConfig, seed: u64) -> TestRunner {
            TestRunner {
                config,
                rng: TestRng::new(seed),
            }
        }

        /// Fixed-seed runner (API parity with proptest).
        pub fn deterministic() -> TestRunner {
            TestRunner::with_seed(ProptestConfig::default(), 0x5eed_cafe_f00d_0001)
        }

        /// The configured case count.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Mutable access to the RNG (used by `Strategy::new_tree`).
        pub fn rng_mut(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }

    /// FNV-1a over a test's identifying string: stable per-test seeds.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};

/// Define property tests: each generated input runs the body `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut runner = $crate::test_runner::TestRunner::with_seed(config, seed);
                for _case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng_mut());)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vec_sizes_respected() {
        let mut rng = TestRng::new(1);
        let strat = collection::vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn regex_literal_strategies() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-z]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = ".{0,40}".generate(&mut rng);
            assert!(t.chars().count() <= 40);
            assert!(!t.contains('\n'));
        }
    }

    #[test]
    fn oneof_weights_bias_selection() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let ones = (0..1000).filter(|_| strat.generate(&mut rng) == 1).count();
        assert!(ones > 800, "{ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_and_iterates(x in 0usize..50, mut v in collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 50);
            v.push(0);
            prop_assert!(v.len() <= 4);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
