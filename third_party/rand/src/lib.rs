//! Offline stand-in for `rand` 0.9.
//!
//! Implements the subset the workspace uses: a seedable [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64), the [`Rng`] extension trait with
//! `random`, `random_range`, and `random_bool`, and [`SeedableRng`].
//! Deterministic for a given seed, like the real crate, though the exact
//! stream differs from upstream `StdRng` (callers in this workspace only
//! rely on determinism and distribution shape, not the concrete stream).

/// Low-level entropy source: everything is built on `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (implemented for the primitives the
    /// workspace samples).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value within `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (splitmix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (stand-in for
/// `rand::distr::StandardUniform` support).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a raw u64 onto `[0, span)` without modulo bias (128-bit multiply).
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ with splitmix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // Avoid the all-zero state, which xoshiro can't escape.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
