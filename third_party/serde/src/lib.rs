//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names as marker traits and, with
//! the `derive` feature, re-exports no-op derive macros of the same names.
//! The workspace never serializes through serde (there is no format crate
//! in the offline dependency set); the derives are retained so struct
//! definitions stay source-compatible with a future real-serde build.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
