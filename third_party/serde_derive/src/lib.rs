//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as declarative
//! markers (no serializer crate exists in the offline dependency set), so
//! both derives expand to nothing. This keeps `#[derive(Serialize)]`
//! attributes compiling without pulling in `syn`/`quote`, which are
//! unavailable offline.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
